// Package framepool statically checks the frame-pool ownership rules that
// internal/frame documents as "enforced by convention, checked by poison
// mode". Poison mode only turns a violation into a loud failure when a
// test happens to execute it; this analyzer refuses to let the violating
// code compile into the tree at all.
//
// Within each function it tracks local variables of type *frame.Buf and
// flags, flow-insensitively but position-aware:
//
//   - use after Release, and double Release
//   - use (or Release) after an ownership-transferring call — passing the
//     Buf to SendFrame hands it to the fabric, which releases it on every
//     outcome
//   - slices derived from the frame's bytes (Bytes, Prepend) that are used
//     after the frame was released or transferred, or stored somewhere
//     longer-lived while the function gives the frame away — the
//     reassembler-style bugs that poison mode exists to catch; copy (or
//     tcp's privatize) first
//   - Buf values obtained from Pool.Get that are never released, handed
//     off, returned, or stored: a pool leak
//
// The position analysis understands early returns: a Release inside a
// block that cannot fall through (it ends in return, panic, break,
// continue, or an if/else whose branches all terminate) poisons only that
// block, so the fabric's `if !alive { fb.Release(); return }` guards stay
// clean. A Release or transfer inside a loop body additionally poisons the
// whole body when the variable is never rebound in the loop — the
// transfer-in-loop bug where iteration two touches a frame iteration one
// gave away. Releases under defer are treated as handoffs only; their
// execution point is the function's end, which a linear scan cannot
// order.
//
// Ownership that crosses a same-package call boundary is handled by
// bottom-up ownership summaries (see summary.go): a helper that releases,
// transfers, or retains its *frame.Buf parameter propagates those facts
// to every caller, so a use after `helper(fb)` is flagged exactly like a
// use after `fb.Release()`, a helper returning `fb.Bytes()` extends the
// derived-slice tracking through the call, and a Get result whose only
// consumer is a provably read-only helper is still a pool leak. Ownership
// crossing a package boundary (a FrameHandler retaining bytes past
// HandleFrame's return) remains governed by the documented convention and
// the runtime poison tests; the two mechanisms back each other up.
package framepool

import (
	"go/ast"
	"go/token"
	"go/types"

	"hydranet/internal/lint"
)

// Analyzer is the frame-pool ownership checker.
var Analyzer = &lint.Analyzer{
	Name: "framepool",
	Doc:  "check frame.Buf ownership: use-after-Release, double Release, retained derived slices, pool leaks",
	Run:  run,
}

// transferFuncs name the callees that take ownership of a *frame.Buf
// argument.
var transferFuncs = map[string]bool{
	"SendFrame": true,
}

// deriveMethods are *frame.Buf methods whose result aliases the frame's
// backing array.
var deriveMethods = map[string]bool{
	"Bytes":   true,
	"Prepend": true,
}

func run(pass *lint.Pass) error {
	sums := computeSummaries(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			analyzeFunc(pass, fn, sums)
		}
	}
	return nil
}

// isBufPtr reports whether t is *frame.Buf (any package named frame, so
// analyzer testdata can supply its own).
func isBufPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Buf" && obj.Pkg() != nil && obj.Pkg().Name() == "frame"
}

// eventKind distinguishes ownership-ending operations.
type eventKind int

const (
	evRelease eventKind = iota
	evTransfer
)

// event is one ownership-ending operation on a tracked variable.
type event struct {
	obj       *types.Var
	kind      eventKind
	pos       token.Pos // of the call
	selfIdent token.Pos // the variable's own mention inside the call
	intervals []interval
	callee    string
	via       bool // the release/transfer happens inside the callee
}

type interval struct{ from, to token.Pos }

func (iv interval) contains(p token.Pos) bool { return p >= iv.from && p <= iv.to }

// use is one mention of a tracked variable.
type use struct {
	obj *types.Var
	id  *ast.Ident
}

func analyzeFunc(pass *lint.Pass, fn *ast.FuncDecl, sums *pkgSummaries) {
	info := pass.TypesInfo

	// Track every local (including params and receiver) of type *frame.Buf.
	tracked := map[*types.Var]bool{}
	fromGet := map[*types.Var]*ast.CallExpr{}
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && isBufPtr(v.Type()) {
			tracked[v] = true
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	parents := buildParents(fn)

	var events []event
	resets := map[*types.Var][]token.Pos{}
	var uses []use
	handoff := map[*types.Var]bool{}   // leak check: ownership plausibly left
	lhsIdents := map[*ast.Ident]bool{} // pure rebinds; not reads
	deferred := map[token.Pos]bool{}   // positions of calls under defer

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call.Pos()] = true
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if d, ok := info.Defs[id].(*types.Var); ok {
					v = d
				} else if u, ok := info.Uses[id].(*types.Var); ok {
					v = u
				}
				if v == nil || !tracked[v] {
					continue
				}
				lhsIdents[id] = true
				resets[v] = append(resets[v], id.Pos())
				if len(n.Lhs) == len(n.Rhs) {
					if call := asCall(n.Rhs[i]); call != nil && isPoolGet(info, call) {
						fromGet[v] = call
					}
				}
			}
		case *ast.CallExpr:
			collectCallEvents(pass, fn, n, info, tracked, parents, &events, handoff, deferred, sums)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if v := trackedIdentVar(info, tracked, r); v != nil {
					handoff[v] = true
				}
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && tracked[v] {
				uses = append(uses, use{obj: v, id: n})
			}
		}
		return true
	})

	// Escapes beyond calls: stores into anything that is not a plain local
	// rebind (fields, slices, maps, globals, channel sends, composite
	// literals, closures) count as handoffs for the leak check.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if v := trackedIdentVar(info, tracked, rhs); v != nil {
					if !isLocalRebind(info, tracked, n) {
						handoff[v] = true
					}
				}
			}
		case *ast.SendStmt:
			if v := trackedIdentVar(info, tracked, n.Value); v != nil {
				handoff[v] = true
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				x := e
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					x = kv.Value
				}
				if v := trackedIdentVar(info, tracked, x); v != nil {
					handoff[v] = true
				}
			}
		case *ast.FuncLit:
			// A closure that mentions the buf may release it later.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && tracked[v] {
						handoff[v] = true
					}
				}
				return true
			})
		}
		return true
	})

	derived, derivedResets := deriveSlices(info, fn, tracked, sums)

	reportOwnership(pass, events, uses, resets, lhsIdents, derived, derivedResets, info)
	reportLeaks(pass, fromGet, handoff)
	reportRetainedStores(pass, fn, info, tracked, events, derived, sums)
}

// collectCallEvents records Release and transfer calls on tracked vars,
// plus ownership-ending calls to summarized same-package helpers.
func collectCallEvents(pass *lint.Pass, fn *ast.FuncDecl, call *ast.CallExpr, info *types.Info,
	tracked map[*types.Var]bool, parents map[ast.Node]ast.Node,
	events *[]event, handoff map[*types.Var]bool, deferred map[token.Pos]bool, sums *pkgSummaries) {

	// fb.Release()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && len(call.Args) == 0 {
		if v := trackedIdentVar(info, tracked, sel.X); v != nil {
			handoff[v] = true
			if deferred[call.Pos()] {
				return // runs at function exit; cannot be ordered linearly
			}
			ivs, loopCarried := poisonIntervals(fn, call, parents, v, info)
			if loopCarried {
				pass.Reportf(call.Pos(), "Release of %s inside a loop that never rebinds it: the next iteration double-releases", v.Name())
			}
			*events = append(*events, event{
				obj: v, kind: evRelease, pos: call.Pos(),
				selfIdent: identPos(sel.X),
				intervals: ivs,
				callee:    "Release",
			})
			return
		}
	}

	// Transfer calls and summarized helpers: any argument that is a
	// tracked var. Named transfer callees (SendFrame) keep their dedicated
	// semantics; ownership summaries speak for everything else the package
	// call graph can resolve.
	name := calleeName(call)
	var sum *ownSummary
	if !transferFuncs[name] {
		sum = sums.forCall(call)
	}
	for ai, arg := range call.Args {
		v := trackedIdentVar(info, tracked, arg)
		if v == nil {
			continue
		}
		pf := sum.param(ai)
		if sum == nil || !pf.pure() {
			handoff[v] = true // the callee may assume ownership
		}
		if transferFuncs[name] && !deferred[call.Pos()] {
			ivs, loopCarried := poisonIntervals(fn, call, parents, v, info)
			if loopCarried {
				pass.Reportf(call.Pos(), "transfer of %s to %s inside a loop that never rebinds it: the next iteration hands the fabric a frame it already owns", v.Name(), name)
			}
			*events = append(*events, event{
				obj: v, kind: evTransfer, pos: call.Pos(),
				selfIdent: identPos(arg),
				intervals: ivs,
				callee:    name,
			})
			continue
		}
		if pf != nil && (pf.releases || pf.transfers) && !deferred[call.Pos()] {
			ivs, loopCarried := poisonIntervals(fn, call, parents, v, info)
			kind := evRelease
			if !pf.releases {
				kind = evTransfer
			}
			if loopCarried {
				if kind == evRelease {
					pass.Reportf(call.Pos(), "call to %s releases %s inside a loop that never rebinds it: the next iteration touches a dead frame", name, v.Name())
				} else {
					pass.Reportf(call.Pos(), "call to %s transfers %s inside a loop that never rebinds it: the next iteration hands the fabric a frame it already owns", name, v.Name())
				}
			}
			*events = append(*events, event{
				obj: v, kind: kind, pos: call.Pos(),
				selfIdent: identPos(arg),
				intervals: ivs,
				callee:    name,
				via:       true,
			})
		}
	}
}

// reportOwnership flags uses that land inside some event's poisoned
// region with no rebind in between.
func reportOwnership(pass *lint.Pass, events []event, uses []use,
	resets map[*types.Var][]token.Pos, lhsIdents map[*ast.Ident]bool,
	derived map[*types.Var]*types.Var, derivedResets map[*types.Var][]token.Pos, info *types.Info) {

	flagged := map[token.Pos]bool{}
	flag := func(pos token.Pos, format string, args ...any) {
		if !flagged[pos] {
			flagged[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	for _, u := range uses {
		if lhsIdents[u.id] {
			continue // rebind, not a read
		}
		upos := u.id.Pos()
		for i := range events {
			ev := &events[i]
			if ev.obj != u.obj || upos == ev.selfIdent {
				continue
			}
			if !inIntervals(ev.intervals, upos) {
				continue
			}
			if rebindBetween(resets[u.obj], ev.pos, upos) {
				continue
			}
			switch classifyUse(u.id, ev, events) {
			case "double-release":
				if ev.via {
					flag(upos, "double Release of %s (released inside call to %s at %s)", u.obj.Name(), ev.callee, pass.Fset.Position(ev.pos))
				} else {
					flag(upos, "double Release of %s (first at %s)", u.obj.Name(), pass.Fset.Position(ev.pos))
				}
			case "release-after-transfer":
				if ev.via {
					flag(upos, "Release of %s after call to %s handed it to the fabric at %s: the fabric guarantees the release", u.obj.Name(), ev.callee, pass.Fset.Position(ev.pos))
				} else {
					flag(upos, "Release of %s after ownership transfer to %s at %s: the fabric guarantees the release", u.obj.Name(), ev.callee, pass.Fset.Position(ev.pos))
				}
			default:
				switch {
				case ev.via && ev.kind == evRelease:
					flag(upos, "use of %s after call to %s, which releases it, at %s", u.obj.Name(), ev.callee, pass.Fset.Position(ev.pos))
				case ev.via:
					flag(upos, "use of %s after call to %s, which hands it to the fabric, at %s", u.obj.Name(), ev.callee, pass.Fset.Position(ev.pos))
				case ev.kind == evRelease:
					flag(upos, "use of %s after Release at %s", u.obj.Name(), pass.Fset.Position(ev.pos))
				default:
					flag(upos, "use of %s after ownership transfer to %s at %s", u.obj.Name(), ev.callee, pass.Fset.Position(ev.pos))
				}
			}
			break
		}
	}

	// Derived slices: a use of d (derived from fb) inside fb's poisoned
	// region is a read through a recycled frame.
	for dv, bv := range derived {
		for _, u := range mentionsOf(info, dv) {
			upos := u.Pos()
			if lhsIdents[u] {
				continue
			}
			for i := range events {
				ev := &events[i]
				if ev.obj != bv || !inIntervals(ev.intervals, upos) {
					continue
				}
				if rebindBetween(resets[bv], ev.pos, upos) || rebindBetween(derivedResets[dv], ev.pos, upos) {
					continue
				}
				what := "Release"
				switch {
				case ev.via && ev.kind == evRelease:
					what = "release inside call to " + ev.callee
				case ev.via:
					what = "transfer inside call to " + ev.callee
				case ev.kind == evTransfer:
					what = "ownership transfer to " + ev.callee
				}
				flag(upos, "slice %s derived from frame %s used after its %s at %s; copy (or privatize) before giving the frame away",
					dv.Name(), bv.Name(), what, pass.Fset.Position(ev.pos))
				break
			}
		}
	}
}

// classifyUse refines the message when the offending use is itself a
// Release or transfer event.
func classifyUse(id *ast.Ident, cause *event, events []event) string {
	for i := range events {
		ev := &events[i]
		if ev.selfIdent != id.Pos() {
			continue
		}
		if ev.kind == evRelease {
			if cause.kind == evRelease {
				return "double-release"
			}
			return "release-after-transfer"
		}
	}
	return "use"
}

// reportLeaks flags Get results that never leave the function.
func reportLeaks(pass *lint.Pass, fromGet map[*types.Var]*ast.CallExpr, handoff map[*types.Var]bool) {
	for v, call := range fromGet {
		if handoff[v] {
			continue
		}
		pass.Reportf(call.Pos(), "%s obtained from Get is never released or handed off: pool leak", v.Name())
	}
}

// reportRetainedStores flags derived slices stored into longer-lived
// places when the function also gives the frame away.
func reportRetainedStores(pass *lint.Pass, fn *ast.FuncDecl, info *types.Info,
	tracked map[*types.Var]bool, events []event, derived map[*types.Var]*types.Var, sums *pkgSummaries) {

	gone := map[*types.Var]bool{}
	for i := range events {
		gone[events[i].obj] = true
	}
	if len(gone) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
				continue // local rebinds handled by the positional analysis
			}
			bv := derivedSource(info, tracked, derived, sums, as.Rhs[i])
			if bv == nil || !gone[bv] {
				continue
			}
			pass.Reportf(as.Rhs[i].Pos(), "slice derived from frame %s stored in longer-lived state while this function releases or transfers the frame; copy the bytes instead", bv.Name())
		}
		return true
	})
}

// --- derived-slice tracking ---

// deriveSlices maps slice variables to the Buf they alias, by fixpoint
// over assignments, plus reset positions (assignments from non-derived
// sources, e.g. a privatizing copy).
func deriveSlices(info *types.Info, fn *ast.FuncDecl, tracked map[*types.Var]bool, sums *pkgSummaries) (map[*types.Var]*types.Var, map[*types.Var][]token.Pos) {
	derived := map[*types.Var]*types.Var{}
	resets := map[*types.Var][]token.Pos{}
	for {
		changed := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if d, ok := info.Defs[id].(*types.Var); ok {
					v = d
				} else if u, ok := info.Uses[id].(*types.Var); ok {
					v = u
				}
				if v == nil || tracked[v] {
					continue
				}
				if src := derivedSource(info, tracked, derived, sums, as.Rhs[i]); src != nil {
					if derived[v] != src {
						derived[v] = src
						changed = true
					}
				} else {
					resets[v] = append(resets[v], id.Pos())
				}
			}
			return true
		})
		if !changed {
			break
		}
		// resets accumulate duplicates across fixpoint rounds; harmless
		// (positional containment only), but cap the loop for safety.
		if len(derived) > 1024 {
			break
		}
	}
	return derived, resets
}

// derivedSource resolves expr to the tracked Buf it aliases, or nil. A
// call to a summarized helper whose result aliases a parameter's bytes
// (returns-derived-slice) resolves through the call to the argument.
func derivedSource(info *types.Info, tracked map[*types.Var]bool, derived map[*types.Var]*types.Var, sums *pkgSummaries, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			if src, ok := derived[v]; ok {
				return src
			}
		}
	case *ast.SliceExpr:
		return derivedSource(info, tracked, derived, sums, e.X)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && deriveMethods[sel.Sel.Name] {
			if v := trackedIdentVar(info, tracked, sel.X); v != nil {
				return v
			}
		}
		if cs := sums.forCall(e); cs != nil {
			for _, j := range cs.derivedResultParams(0) {
				if j < len(e.Args) {
					if v := trackedIdentVar(info, tracked, e.Args[j]); v != nil {
						return v
					}
				}
			}
		}
	}
	return nil
}

// --- poison interval computation ---

// buildParents maps every node under fn to its parent.
func buildParents(fn *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// poisonIntervals computes the source regions poisoned by an
// ownership-ending call: from the call to the end of each enclosing block
// it can fall out of, stopping at blocks that cannot complete normally
// and at the innermost function-literal boundary. Inside a loop whose
// body never rebinds the variable, the whole body is poisoned (the event
// reaches the next iteration); loopCarried additionally reports the
// unguarded straight-line case, where the event's own call site is the
// next iteration's violation.
func poisonIntervals(fn *ast.FuncDecl, call *ast.CallExpr, parents map[ast.Node]ast.Node, v *types.Var, info *types.Info) (out []interval, loopCarried bool) {
	start := call.Pos()

	var node ast.Node = call
	for {
		parent := parents[node]
		if parent == nil {
			break
		}
		stmts, blockEnd, isFuncBoundary, loopBody := container(parents, parent)
		if stmts != nil {
			out = append(out, interval{start, blockEnd})
			idx := childIndex(stmts, node)
			if loopBody != nil && !rebindsVar(info, loopBody, v) && !rangeRebinds(parents, loopBody, v, info) {
				out = append(out, interval{loopBody.Pos(), start})
				// Straight-line event (its own statement is the bare call,
				// not guarded by a conditional) with no way out of the loop
				// after it: the next iteration repeats the event itself.
				if idx >= 0 && isBareCallStmt(stmts[idx], call) && !segmentTerminates(stmts, idx+1) {
					loopCarried = true
				}
			}
			if segmentTerminates(stmts, idx) {
				return out, loopCarried
			}
			// Continue above the statement that owns this block.
			start = containingStmtEnd(parents, parent)
		}
		if isFuncBoundary {
			return out, loopCarried
		}
		node = parent
	}
	return out, loopCarried
}

// isBareCallStmt reports whether s is exactly `call` as an expression
// statement.
func isBareCallStmt(s ast.Stmt, call *ast.CallExpr) bool {
	es, ok := s.(*ast.ExprStmt)
	return ok && ast.Unparen(es.X) == call
}

// container inspects a parent node: when it is a statement-list holder it
// returns the list and its end. It also reports whether the parent is a
// function boundary, and the loop body when the parent is a loop's block.
func container(parents map[ast.Node]ast.Node, parent ast.Node) (stmts []ast.Stmt, end token.Pos, funcBoundary bool, loopBody *ast.BlockStmt) {
	switch p := parent.(type) {
	case *ast.BlockStmt:
		stmts, end = p.List, p.End()
		switch gp := parents[p].(type) {
		case *ast.FuncDecl:
			funcBoundary = true
		case *ast.FuncLit:
			funcBoundary = true
		case *ast.ForStmt:
			if gp.Body == p {
				loopBody = p
			}
		case *ast.RangeStmt:
			if gp.Body == p {
				loopBody = p
			}
		}
	case *ast.CaseClause:
		stmts, end = p.Body, p.End()
	case *ast.CommClause:
		stmts, end = p.Body, p.End()
	}
	return
}

// containingStmtEnd walks from block upward to the statement that owns it
// (IfStmt, ForStmt, SwitchStmt, ...) and returns that statement's End, so
// the next poison interval skips sibling branches: an else block is not
// reachable from its then block, and a later case clause is not reachable
// from an earlier one.
func containingStmtEnd(parents map[ast.Node]ast.Node, block ast.Node) token.Pos {
	// A case or comm clause exits its whole switch/select.
	switch block.(type) {
	case *ast.CaseClause, *ast.CommClause:
		n := block
		for {
			p := parents[n]
			if p == nil {
				return block.End()
			}
			switch p.(type) {
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				return p.End()
			}
			n = p
		}
	}
	n := block
	for {
		p := parents[n]
		if p == nil {
			return block.End()
		}
		if _, ok := p.(ast.Stmt); ok {
			if _, isBlock := p.(*ast.BlockStmt); !isBlock {
				return p.End()
			}
			return n.End()
		}
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return n.End()
		}
		n = p
	}
}

// childIndex finds which statement of stmts contains n.
func childIndex(stmts []ast.Stmt, n ast.Node) int {
	for i, s := range stmts {
		if s.Pos() <= n.Pos() && n.End() <= s.End() {
			return i
		}
	}
	return -1
}

// segmentTerminates reports whether execution entering stmts[idx] can
// never fall past the end of the list: some statement at or after idx is
// terminating.
func segmentTerminates(stmts []ast.Stmt, idx int) bool {
	if idx < 0 {
		return false
	}
	for _, s := range stmts[idx:] {
		if isTerminating(s) {
			return true
		}
	}
	return false
}

// isTerminating is a pragmatic subset of the spec's terminating-statement
// rules.
func isTerminating(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		thenTerm := blockTerminates(s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			return thenTerm && blockTerminates(e)
		case *ast.IfStmt:
			return thenTerm && isTerminating(e)
		}
	case *ast.BlockStmt:
		return blockTerminates(s)
	}
	return false
}

func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return segmentTerminates(b.List, 0)
}

// isLocalRebind reports whether every LHS of the assignment is a plain
// local identifier: copying a tracked var into another local aliases it
// (the alias is itself tracked) rather than letting it escape.
func isLocalRebind(info *types.Info, tracked map[*types.Var]bool, as *ast.AssignStmt) bool {
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			return false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return false // store into a package-level var escapes
		}
	}
	return true
}

// rangeRebinds reports whether the loop owning body is a range statement
// whose key or value binding is v: range variables are freshly bound every
// iteration, so an ownership event on one never carries into the next
// iteration.
func rangeRebinds(parents map[ast.Node]ast.Node, body *ast.BlockStmt, v *types.Var, info *types.Info) bool {
	rs, ok := parents[body].(*ast.RangeStmt)
	if !ok {
		return false
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			continue
		}
		if info.Defs[id] == v || info.Uses[id] == v {
			return true
		}
	}
	return false
}

// rebindsVar reports whether any assignment in the subtree rebinds v.
func rebindsVar(info *types.Info, root ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if info.Defs[id] == v || info.Uses[id] == v {
				found = true
			}
		}
		return true
	})
	return found
}

// --- small helpers ---

func inIntervals(ivs []interval, p token.Pos) bool {
	for _, iv := range ivs {
		if iv.contains(p) {
			return true
		}
	}
	return false
}

// rebindBetween reports whether the variable was rebound strictly between
// from and to.
func rebindBetween(resets []token.Pos, from, to token.Pos) bool {
	for _, r := range resets {
		if r > from && r < to {
			return true
		}
	}
	return false
}

// trackedIdentVar resolves expr to a tracked variable, or nil.
func trackedIdentVar(info *types.Info, tracked map[*types.Var]bool, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok && tracked[v] {
		return v
	}
	return nil
}

func identPos(expr ast.Expr) token.Pos {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		return id.Pos()
	}
	return token.NoPos
}

func asCall(expr ast.Expr) *ast.CallExpr {
	call, _ := ast.Unparen(expr).(*ast.CallExpr)
	return call
}

// isPoolGet reports whether the call is a Get returning *frame.Buf.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	tv, ok := info.Types[call]
	return ok && tv.Type != nil && isBufPtr(tv.Type)
}

// calleeName extracts the called function or method's bare name.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// mentionsOf collects every mention of v. (Separate from the main use
// list so derived-slice vars, which are not tracked Buf vars, get their
// own scan.)
func mentionsOf(info *types.Info, v *types.Var) []*ast.Ident {
	var out []*ast.Ident
	for id, obj := range info.Uses {
		if obj == v {
			out = append(out, id)
		}
	}
	return out
}
