package ir

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefUse holds the reaching-definitions solution for one function: for
// every identifier that reads a local variable, the set of assignments
// (by position) that may have produced the value it observes. Parameters
// and receivers are defined at function entry with position token.NoPos.
type DefUse struct {
	// Reaching maps each reading identifier to the positions of the
	// definitions that reach it.
	Reaching map[*ast.Ident][]token.Pos
}

// defSet is the dataflow fact: for each variable, the positions of the
// definitions live at this point.
type defSet map[*types.Var]map[token.Pos]bool

func cloneDefSet(f defSet) defSet {
	out := make(defSet, len(f))
	for v, ps := range f {
		cp := make(map[token.Pos]bool, len(ps))
		for p := range ps {
			cp[p] = true
		}
		out[v] = cp
	}
	return out
}

// BuildDefUse solves reaching definitions over the CFG (a forward may
// analysis: join is union) and chains each use to its reaching defs.
func BuildDefUse(cfg *CFG, fn *ast.FuncDecl, info *types.Info) *DefUse {
	entry := defSet{}
	if fn != nil {
		declare := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						entry[v] = map[token.Pos]bool{token.NoPos: true}
					}
				}
			}
		}
		if fn.Recv != nil {
			declare(fn.Recv)
		}
		if fn.Type != nil {
			declare(fn.Type.Params)
			declare(fn.Type.Results)
		}
	}

	p := Problem[defSet]{
		Lattice: Lattice[defSet]{
			Join: func(a, b defSet) defSet {
				out := cloneDefSet(a)
				for v, ps := range b {
					if out[v] == nil {
						out[v] = map[token.Pos]bool{}
					}
					for pos := range ps {
						out[v][pos] = true
					}
				}
				return out
			},
			Equal: func(a, b defSet) bool {
				if len(a) != len(b) {
					return false
				}
				for v, ps := range a {
					qs, ok := b[v]
					if !ok || len(ps) != len(qs) {
						return false
					}
					for pos := range ps {
						if !qs[pos] {
							return false
						}
					}
				}
				return true
			},
			Clone: cloneDefSet,
		},
		Boundary: entry,
		Transfer: func(elem ast.Node, f defSet) defSet {
			forEachDef(elem, info, func(v *types.Var, pos token.Pos) {
				f[v] = map[token.Pos]bool{pos: true} // kill, then gen
			})
			return f
		},
	}
	in, _ := Forward(cfg, p)

	du := &DefUse{Reaching: map[*ast.Ident][]token.Pos{}}
	for _, b := range cfg.Blocks {
		fact, ok := in[b]
		if !ok {
			continue // unreachable
		}
		fact = cloneDefSet(fact)
		for _, e := range b.Elems {
			// Reads in this element observe the defs live before it.
			Inspect(e, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || isDefIdent(e, id, info) {
					return true
				}
				if ps, tracked := fact[v]; tracked {
					for pos := range ps {
						du.Reaching[id] = append(du.Reaching[id], pos)
					}
				}
				return true
			})
			forEachDef(e, info, func(v *types.Var, pos token.Pos) {
				fact[v] = map[token.Pos]bool{pos: true}
			})
		}
	}
	return du
}

// forEachDef reports each variable (re)defined by a leaf element: plain
// assignments and short declarations to identifier targets, var specs,
// inc/dec, and range key/value bindings.
func forEachDef(elem ast.Node, info *types.Info, emit func(v *types.Var, pos token.Pos)) {
	visit := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			emit(v, id.Pos())
		} else if v, ok := info.Uses[id].(*types.Var); ok {
			emit(v, id.Pos())
		}
	}
	switch n := elem.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			visit(lhs)
		}
	case *ast.IncDecStmt:
		visit(n.X)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						visit(name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			visit(n.Key)
		}
		if n.Value != nil {
			visit(n.Value)
		}
	}
}

// isDefIdent reports whether id is (one of) the definition target(s) of
// elem rather than a read.
func isDefIdent(elem ast.Node, id *ast.Ident, info *types.Info) bool {
	found := false
	forEachDef(elem, info, func(v *types.Var, pos token.Pos) {
		if pos == id.Pos() {
			found = true
		}
	})
	return found
}
