package ir

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// parseFunc type-checks src (a complete file) and returns the named
// function plus the type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *types.Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, pkg, fset
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil, nil, nil
}

// parsePkg type-checks src and returns everything file-level.
func parsePkg(t *testing.T, src string) ([]*ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return []*ast.File{f}, info, pkg
}

// reachesExit walks the graph from Entry and reports whether Exit is
// reachable, as a basic well-formedness probe.
func reachesExit(c *CFG) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == c.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(c.Entry)
}

func TestBuildShapes(t *testing.T) {
	cases := []struct{ name, body string }{
		{"straightline", `x := 1; _ = x`},
		{"if", `if c { x := 1; _ = x } else { y := 2; _ = y }`},
		{"ifEarlyReturn", `if c { return }; x := 1; _ = x`},
		{"forCond", `for i := 0; i < 10; i++ { if c { break }; if !c { continue } }`},
		{"forever", `for { if c { return } }`},
		{"rangeLoop", `for i, v := range xs { _ = i; _ = v }`},
		{"switchTag", `switch n { case 0: x := 1; _ = x; fallthrough; case 1: default: return }`},
		{"typeSwitch", `switch v := any(n).(type) { case int: _ = v; case string: }`},
		{"selectStmt", `select { case <-ch: case ch <- 1: return }`},
		{"labeledBreak", `outer: for { for { break outer } }`},
		{"labeledContinue", `outer: for i := 0; i < 2; i++ { for { continue outer } }`},
		{"gotoBack", `i := 0; top: i++; if i < 3 { goto top }`},
		{"panicTerm", `if c { panic("x") }; _ = n`},
		{"deferStmt", `defer f(); _ = n`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(`package p
var c bool
var n int
var xs []int
var ch chan int
func f() {}
func target() { %s }`, tc.body)
			fd, _, _, _ := parseFunc(t, src, "target")
			cfg := Build(fd.Body)
			if !reachesExit(cfg) {
				t.Fatalf("%s: Exit unreachable from Entry", tc.name)
			}
			if cfg.Exit.Index != len(cfg.Blocks)-1 {
				t.Fatalf("%s: Exit not last block", tc.name)
			}
			for _, b := range cfg.Blocks {
				for _, s := range b.Succs {
					found := false
					for _, p := range s.Preds {
						if p == b {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s: succ edge %d->%d missing pred backlink", tc.name, b.Index, s.Index)
					}
				}
			}
		})
	}
}

func TestDefersCollected(t *testing.T) {
	src := `package p
func f() {}
func target() { defer f(); if true { defer f() } }`
	fd, _, _, _ := parseFunc(t, src, "target")
	cfg := Build(fd.Body)
	if len(cfg.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(cfg.Defers))
	}
}

// TestForwardMustAnalysis runs a miniature locked-region analysis: the
// fact is "definitely holding the lock", join is AND. It is the shape the
// determinism analyzer's inbox fence uses.
func TestForwardMustAnalysis(t *testing.T) {
	src := `package p
var c bool
type mu struct{}
func (x *mu) Lock()   {}
func (x *mu) Unlock() {}
var m mu
func probe() {}
func branchOnly() { if c { m.Lock() }; probe(); if c { m.Unlock() } }
func lockUnlock() { m.Lock(); m.Unlock(); probe() }
func held() { m.Lock(); probe(); m.Unlock() }
func bothBranches() { if c { m.Lock() } else { m.Lock() }; probe(); m.Unlock() }`

	lat := Lattice[int]{ // 0 = not held, 1 = held; join = min (must)
		Join:  func(a, b int) int { return min(a, b) },
		Equal: func(a, b int) bool { return a == b },
		Clone: func(a int) int { return a },
	}
	heldAtProbe := func(t *testing.T, fnName string) int {
		fd, info, _, _ := parseFunc(t, src, fnName)
		cfg := Build(fd.Body)
		transfer := func(elem ast.Node, f int) int {
			var out = f
			Inspect(elem, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Lock":
						out = 1
					case "Unlock":
						out = 0
					}
				}
				return true
			})
			return out
		}
		p := Problem[int]{Lattice: lat, Boundary: 0, Transfer: transfer}
		in, reach := Forward(cfg, p)
		result := -1
		for _, b := range cfg.Blocks {
			if !reach[b] {
				continue
			}
			f := in[b]
			for _, e := range b.Elems {
				isProbe := false
				Inspect(e, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
							isProbe = true
						}
					}
					return true
				})
				if isProbe {
					result = f
				}
				f = transfer(e, f)
			}
		}
		if result == -1 {
			t.Fatalf("%s: probe() not found", fnName)
		}
		_ = info
		return result
	}

	for fn, want := range map[string]int{
		"branchOnly":   0, // lock on one path only: not must-held
		"lockUnlock":   0, // released before the probe
		"held":         1,
		"bothBranches": 1, // held on every path into the merge
	} {
		if got := heldAtProbe(t, fn); got != want {
			t.Errorf("%s: held=%d at probe, want %d", fn, got, want)
		}
	}
}

func TestDefUseChains(t *testing.T) {
	src := `package p
var c bool
func g() int { return 1 }
func target() int {
	x := 1
	if c {
		x = 2
	}
	y := x
	x = 3
	return x + y
}`
	fd, info, _, fset := parseFunc(t, src, "target")
	cfg := Build(fd.Body)
	du := BuildDefUse(cfg, fd, info)

	// Find the use of x in `y := x`: two defs reach it (lines 5 and 7).
	// The use in `return x + y` sees exactly one (line 10's x = 3).
	counts := map[int]int{} // use line -> reaching def count
	for id, defs := range du.Reaching {
		if id.Name != "x" {
			continue
		}
		counts[fset.Position(id.Pos()).Line] = len(defs)
	}
	if counts[9] != 2 {
		t.Errorf("use of x at line 9 reached by %d defs, want 2", counts[9])
	}
	if counts[11] != 1 {
		t.Errorf("use of x at line 11 reached by %d defs, want 1", counts[11])
	}
}

func TestDefUseParamEntryDef(t *testing.T) {
	src := `package p
func target(n int) int { return n }`
	fd, info, _, _ := parseFunc(t, src, "target")
	cfg := Build(fd.Body)
	du := BuildDefUse(cfg, fd, info)
	found := false
	for id, defs := range du.Reaching {
		if id.Name == "n" && len(defs) == 1 && defs[0] == 0 {
			found = true
		}
	}
	if !found {
		t.Error("param use not chained to the entry definition (token.NoPos)")
	}
}

func TestCallGraphBottomUp(t *testing.T) {
	src := `package p
func leaf() {}
func mid() { leaf() }
func top() { mid(); leaf() }
func recA() { recB() }
func recB() { recA() }`
	files, info, pkg := parsePkg(t, src)
	cg := BuildCallGraph(files, info, pkg)

	if len(cg.Decls) != 5 {
		t.Fatalf("got %d decls, want 5", len(cg.Decls))
	}
	var order []string
	visits := map[string]int{}
	cg.BottomUp(func(fn *types.Func, decl *ast.FuncDecl) bool {
		order = append(order, fn.Name())
		visits[fn.Name()]++
		// Report change on the first visit only, so SCC iteration stops.
		return visits[fn.Name()] == 1
	})
	pos := func(name string) int {
		for i, n := range order {
			if n == name {
				return i
			}
		}
		t.Fatalf("%s never visited", name)
		return -1
	}
	if !(pos("leaf") < pos("mid") && pos("mid") < pos("top")) {
		t.Errorf("bottom-up order violated: %v", order)
	}
	// The recA/recB component iterates to fixpoint: each visited at least twice.
	if visits["recA"] < 2 || visits["recB"] < 2 {
		t.Errorf("mutual recursion not iterated: visits=%v", visits)
	}
}

func TestStaticCallee(t *testing.T) {
	src := `package p
import "sort"
type s struct{}
func (s) m() {}
func f() {}
func target() {
	f()
	var v s
	v.m()
	sort.Strings(nil)
	g := f
	g()
}`
	fd, info, pkg, _ := parseFunc(t, src, "target")
	var names []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := StaticCallee(info, call); fn != nil {
			names = append(names, fn.Name())
			_ = pkg
		} else {
			names = append(names, "<indirect>")
		}
		return true
	})
	sort.Strings(names)
	want := []string{"<indirect>", "Strings", "f", "m"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("callees = %v, want %v", names, want)
	}
}
