package ir

import (
	"go/ast"
	"go/types"
	"sort"
)

// A CallGraph relates the functions and methods declared in one package
// through their same-package static call edges. Calls through interfaces,
// function values, and other packages are outside the graph: analyzers
// treat those callees as unknown and fall back to their conservative
// default.
type CallGraph struct {
	// Decls maps each declared function to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Callees lists the same-package functions each function calls
	// directly (deduplicated, source order).
	Callees map[*types.Func][]*types.Func
}

// BuildCallGraph scans the package's files and resolves every static call
// to a function or method declared in pkg.
func BuildCallGraph(files []*ast.File, info *types.Info, pkg *types.Package) *CallGraph {
	cg := &CallGraph{
		Decls:   map[*types.Func]*ast.FuncDecl{},
		Callees: map[*types.Func][]*types.Func{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.Decls[fn] = fd
		}
	}
	for fn, fd := range cg.Decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil || callee.Pkg() != pkg {
				return true
			}
			if _, declared := cg.Decls[callee]; !declared || seen[callee] {
				return true
			}
			seen[callee] = true
			cg.Callees[fn] = append(cg.Callees[fn], callee)
			return true
		})
	}
	return cg
}

// StaticCallee resolves a call expression to the function or method it
// statically invokes, or nil for indirect calls (function values,
// interface methods, conversions, builtins).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: obs.Publish, frame.NewPool, ...
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// BottomUp visits every declared function callees-first: within a
// strongly connected component (mutual recursion) the members are
// revisited until no visit reports a change, so summary computations
// reach their fixpoint. Visit order is deterministic (position order
// within and across components).
func (cg *CallGraph) BottomUp(visit func(fn *types.Func, decl *ast.FuncDecl) bool) {
	for _, scc := range cg.sccs() {
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				if visit(fn, cg.Decls[fn]) {
					changed = true
				}
			}
			if len(scc) == 1 && !cg.selfRecursive(scc[0]) {
				break // no cycle: one pass suffices
			}
		}
	}
}

func (cg *CallGraph) selfRecursive(fn *types.Func) bool {
	for _, c := range cg.Callees[fn] {
		if c == fn {
			return true
		}
	}
	return false
}

// sccs returns the condensation of the call graph in reverse topological
// (callees-first) order, deterministically: Tarjan's algorithm over
// functions sorted by declaration position.
func (cg *CallGraph) sccs() [][]*types.Func {
	fns := make([]*types.Func, 0, len(cg.Decls))
	for fn := range cg.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	var out [][]*types.Func
	next := 0

	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range cg.Callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].Pos() < scc[j].Pos() })
			out = append(out, scc)
		}
	}
	for _, fn := range fns {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
	return out
}
