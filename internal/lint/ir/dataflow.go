package ir

import "go/ast"

// A Lattice describes the fact domain of one dataflow problem. Facts are
// opaque to the solver; the client supplies the algebra.
type Lattice[F any] struct {
	// Join combines facts at control-flow merges (union for a may
	// analysis, intersection for a must analysis). It must not mutate its
	// arguments.
	Join func(a, b F) F
	// Equal detects the fixpoint.
	Equal func(a, b F) bool
	// Clone copies a fact so per-block transfer can mutate freely.
	Clone func(F) F
}

// A Problem is one dataflow analysis over a CFG: a direction (the solver
// picks it by calling Forward or Backward), a boundary fact, and a
// per-element transfer function.
type Problem[F any] struct {
	Lattice  Lattice[F]
	Boundary F // fact at Entry (forward) or Exit (backward)
	// Transfer folds one element into the fact. The solver applies it to
	// every element of a block in order (forward) or reverse (backward).
	Transfer func(elem ast.Node, f F) F
}

// Forward solves the problem with a worklist and returns each block's
// IN fact — the fact that holds just before the block's first element.
// Facts propagate only along reachable paths: a block never reached from
// Entry keeps the zero fact and reachable[b] is false.
func Forward[F any](cfg *CFG, p Problem[F]) (in map[*Block]F, reachable map[*Block]bool) {
	return solve(cfg, p, false)
}

// Backward solves the problem against the edges and returns each block's
// OUT fact — the fact that holds just after the block's last element.
func Backward[F any](cfg *CFG, p Problem[F]) (out map[*Block]F, reachable map[*Block]bool) {
	return solve(cfg, p, true)
}

func solve[F any](cfg *CFG, p Problem[F], backward bool) (map[*Block]F, map[*Block]bool) {
	in := make(map[*Block]F, len(cfg.Blocks))
	seen := make(map[*Block]bool, len(cfg.Blocks))
	start := cfg.Entry
	if backward {
		start = cfg.Exit
	}
	in[start] = p.Lattice.Clone(p.Boundary)
	seen[start] = true

	work := []*Block{start}
	queued := map[*Block]bool{start: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := FoldBlock(b, p, p.Lattice.Clone(in[b]), backward)
		next := b.Succs
		if backward {
			next = b.Preds
		}
		for _, s := range next {
			var merged F
			if !seen[s] {
				merged = p.Lattice.Clone(out)
			} else {
				merged = p.Lattice.Join(in[s], out)
				if p.Lattice.Equal(merged, in[s]) {
					continue
				}
			}
			in[s] = merged
			seen[s] = true
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in, seen
}

// FoldBlock applies the problem's transfer to every element of b starting
// from fact, in block order (or reverse for a backward problem), and
// returns the resulting fact. Analyzers use it to replay a solved block
// and interrogate the fact at a specific element.
func FoldBlock[F any](b *Block, p Problem[F], fact F, backward bool) F {
	if backward {
		for i := len(b.Elems) - 1; i >= 0; i-- {
			fact = p.Transfer(b.Elems[i], fact)
		}
		return fact
	}
	for _, e := range b.Elems {
		fact = p.Transfer(e, fact)
	}
	return fact
}
