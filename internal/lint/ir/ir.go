// Package ir is the hydralint analyzers' intermediate representation: a
// per-function control-flow graph with def-use chains, a lattice-
// parameterized worklist dataflow solver, and a package call graph with a
// bottom-up summary pass. Like the rest of the lint suite it builds from
// the standard library alone (go/ast + go/types, no x/tools).
//
// The purely syntactic analyses that guarded the simulator through PR 7 —
// "Lock earlier in this function", "Release earlier in this block" — go
// blind the moment control flow branches or a fact crosses a call
// boundary. This package is the machinery that replaces those heuristics
// with proofs: the determinism analyzer's locked-region fence, the
// lockorder analyzer's acquisition graph, and the framepool analyzer's
// interprocedural ownership summaries are all dataflow problems over the
// CFGs built here.
//
// # Graph shape
//
// A CFG has one synthetic Entry and one synthetic Exit block; every
// return, panic, and normal fall-off-the-end path reaches Exit. Block
// elements are leaf statements and control-header expressions in
// evaluation order — an if statement contributes its Init and Cond to the
// block that branches, never its branches; a range statement contributes
// the *ast.RangeStmt itself as a header element (use Inspect, which
// understands headers, rather than ast.Inspect, which would descend into
// the body). Deferred calls are collected in Defers: they execute at Exit
// in an order no linear scan can see, so dataflow clients model them at
// function end (or ignore them) explicitly.
package ir

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of elements with explicit control
// edges.
type Block struct {
	Index int
	// Elems are leaf statements and control-header expressions, in
	// evaluation order. Composite statements never appear except
	// *ast.RangeStmt, which stands for its header (X, Key, Value); walk
	// elements with Inspect, which prunes nested bodies.
	Elems []ast.Node
	Succs []*Block
	Preds []*Block
}

// A CFG is one function body's control-flow graph.
type CFG struct {
	Body   *ast.BlockStmt
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers are the deferred calls in syntactic order; they run at Exit
	// (in reverse), on every path that reaches their DeferStmt.
	Defers []*ast.DeferStmt
}

// builder threads the loop/label context needed to wire branch edges.
type builder struct {
	cfg      *CFG
	cur      *Block
	breaks   []*Block          // innermost-last break targets (loops, switches, selects)
	conts    []*Block          // innermost-last continue targets (loops only)
	labels   map[string]*label // named break/continue/goto targets
	gotos    []pendingGoto
	curLabel *label // label awaiting its loop/switch statement, if any
}

type label struct {
	brk, cont *Block // labeled loop/switch targets (nil until known)
	stmt      *Block // the labeled statement's own block, for goto
}

type pendingGoto struct {
	from *Block
	name string
}

// Build constructs the CFG of body. It handles the full statement grammar
// (if/for/range/switch/type-switch/select, labeled break/continue, goto,
// fallthrough); panics and returns edge to Exit.
func Build(body *ast.BlockStmt) *CFG {
	cfg := &CFG{Body: body}
	b := &builder{cfg: cfg, labels: map[string]*label{}}
	cfg.Entry = b.newBlock()
	cfg.Exit = &Block{Index: -1} // renumbered last
	b.cur = cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, cfg.Exit)
	for _, g := range b.gotos {
		if l := b.labels[g.name]; l != nil && l.stmt != nil {
			b.edge(g.from, l.stmt)
		} else {
			b.edge(g.from, cfg.Exit) // unresolvable: be conservative
		}
	}
	cfg.Exit.Index = len(cfg.Blocks)
	cfg.Blocks = append(cfg.Blocks, cfg.Exit)
	return cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from → to, unless from is nil (dead code after a terminator).
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// emit appends a leaf element to the current block (starting a fresh,
// unreachable block when the current one was terminated).
func (b *builder) emit(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // dead code still gets a block
	}
	b.cur.Elems = append(b.cur.Elems, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.emit(s.Init)
		b.emit(s.Cond)
		cond := b.cur
		merge := b.newBlock()
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edge(b.cur, merge)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, merge)
		} else {
			b.edge(cond, merge)
		}
		b.cur = merge
	case *ast.ForStmt:
		b.emit(s.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.emit(s.Cond)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.pushLoop(exit, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.emit(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = exit
	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Elems = append(head.Elems, s) // header stands for X/Key/Value
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.pushLoop(exit, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = exit
	case *ast.SwitchStmt:
		b.emit(s.Init)
		b.emit(s.Tag)
		b.caseClauses(s.Body.List, false)
	case *ast.TypeSwitchStmt:
		b.emit(s.Init)
		b.emit(s.Assign)
		b.caseClauses(s.Body.List, false)
	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, true)
	case *ast.LabeledStmt:
		name := s.Label.Name
		l := b.labels[name]
		if l == nil {
			l = &label{}
			b.labels[name] = l
		}
		// The labeled statement begins a fresh block so gotos can target it.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		l.stmt = target
		b.curLabel = l // the loop/switch about to be built binds its targets
		b.stmt(s.Stmt)
		b.curLabel = nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.emit(s)
			if s.Label != nil {
				if l := b.labels[s.Label.Name]; l != nil {
					b.edge(b.cur, l.brk)
				}
			} else if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			}
			b.cur = nil
		case token.CONTINUE:
			b.emit(s)
			if s.Label != nil {
				if l := b.labels[s.Label.Name]; l != nil {
					b.edge(b.cur, l.cont)
				}
			} else if n := len(b.conts); n > 0 {
				b.edge(b.cur, b.conts[n-1])
			}
			b.cur = nil
		case token.GOTO:
			b.emit(s)
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{b.cur, s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by caseClauses via edge to the next clause; the
			// statement itself is a no-op element.
			b.emit(s)
		}
	case *ast.ReturnStmt:
		b.emit(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.DeferStmt:
		b.emit(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.emit(s)
		if isPanic(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}
	case nil:
		// nothing
	default:
		// Assign, Decl, IncDec, Send, Go, Empty: leaf statements.
		b.emit(s)
	}
}

// caseClauses wires a switch/type-switch/select body: every clause hangs
// off the header, break exits to the merge, fallthrough (switch only)
// falls into the next clause, and a missing default means the header can
// reach the merge directly (select without default blocks, but modeling
// the skip edge only adds paths, which is sound for may/must analyses).
func (b *builder) caseClauses(clauses []ast.Stmt, isSelect bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	merge := b.newBlock()
	b.pushSwitch(merge)
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, c := range clauses {
		var list []ast.Expr
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list, stmts = c.List, c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			} else {
				stmts = append([]ast.Stmt{c.Comm}, c.Body...)
			}
		}
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range list {
			b.emit(e) // case expressions evaluate on the clause's path
		}
		fallsThrough := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && br.Label == nil {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, bodies[i+1])
			b.cur = nil
		}
		b.edge(b.cur, merge)
	}
	if !hasDefault {
		b.edge(head, merge)
	}
	b.popSwitch()
	b.cur = merge
}

// pushLoop records break/continue targets; a label waiting on this loop
// gets its targets bound here.
func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.conts = append(b.conts, cont)
	if b.curLabel != nil {
		b.curLabel.brk = brk
		b.curLabel.cont = cont
		b.curLabel = nil
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *builder) pushSwitch(brk *Block) {
	b.breaks = append(b.breaks, brk)
	if b.curLabel != nil {
		b.curLabel.brk = brk
		b.curLabel = nil
	}
}

func (b *builder) popSwitch() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Inspect walks an element the way ast.Inspect would, except that a
// *ast.RangeStmt element stands only for its header: X, Key and Value are
// visited, the body is not (it lives in its own blocks).
func Inspect(elem ast.Node, fn func(ast.Node) bool) {
	if rs, ok := elem.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			ast.Inspect(rs.Key, fn)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, fn)
		}
		ast.Inspect(rs.X, fn)
		return
	}
	ast.Inspect(elem, fn)
}
