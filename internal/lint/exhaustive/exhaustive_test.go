package exhaustive_test

import (
	"path/filepath"
	"testing"

	"hydranet/internal/lint/exhaustive"
	"hydranet/internal/lint/linttest"
)

func TestKindSwitchesAndTables(t *testing.T) {
	linttest.Run(t, exhaustive.Analyzer, filepath.Join(linttest.TestData(t), "src", "obs"))
}

func TestMaskCapacity(t *testing.T) {
	linttest.Run(t, exhaustive.Analyzer, filepath.Join(linttest.TestData(t), "src", "obsbig"))
}
