// Package obs (the oversized variant) declares more kinds than a uint64
// subscription mask can address: kind 64 and 65 have no bit.
package obs

type Kind uint8 // want "66 event kinds exceed the 64-bit subscription mask"

const (
	KindAlpha Kind = iota
	KindBeta
	KindGamma
	KindDelta
	KindEpsilon
	KindZeta
	KindEta
	KindTheta
	KindIota
	KindKappa
	KindLambda
	KindMu
	KindNu
	KindXi
	KindOmicron
	KindPi
	KindRho
	KindSigma
	KindTau
	KindUpsilon
	KindPhi
	KindChi
	KindExt00
	KindExt01
	KindExt02
	KindExt03
	KindExt04
	KindExt05
	KindExt06
	KindExt07
	KindExt08
	KindExt09
	KindExt10
	KindExt11
	KindExt12
	KindExt13
	KindExt14
	KindExt15
	KindExt16
	KindExt17
	KindExt18
	KindExt19
	KindExt20
	KindExt21
	KindExt22
	KindExt23
	KindExt24
	KindExt25
	KindExt26
	KindExt27
	KindExt28
	KindExt29
	KindExt30
	KindExt31
	KindExt32
	KindExt33
	KindExt34
	KindExt35
	KindExt36
	KindExt37
	KindExt38
	KindExt39
	KindExt40
	KindExt41
	KindExt42
	KindExt43
	numKinds
)

var _ = numKinds
