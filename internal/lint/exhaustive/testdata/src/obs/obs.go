// Package obs is a miniature of the real observation package: a Kind
// enumeration with a numKinds sentinel and a keyed name table. The
// analyzer keys on the package name and type name, so this stand-in
// exercises every check without importing the 22-kind real enum.
package obs

type Kind uint8

const (
	KindAlpha Kind = iota
	KindBeta
	KindGamma
	KindDelta
	KindEpsilon
	KindZeta
	numKinds
)

// kindNames is complete: one row per declared kind.
var kindNames = [numKinds]string{
	KindAlpha:   "alpha",
	KindBeta:    "beta",
	KindGamma:   "gamma",
	KindDelta:   "delta",
	KindEpsilon: "epsilon",
	KindZeta:    "zeta",
}

// kindShort omits two rows: their entries are silent empty strings.
var kindShort = [numKinds]string{ // want "keyed kind table is missing rows for KindEpsilon, KindZeta"
	KindAlpha: "a",
	KindBeta:  "b",
	KindGamma: "g",
	KindDelta: "d",
}

// dispatchIncomplete swallows two kinds without admitting it.
func dispatchIncomplete(k Kind) string {
	switch k { // want "switch on Kind is not exhaustive: missing KindEpsilon, KindZeta"
	case KindAlpha:
		return "a"
	case KindBeta:
		return "b"
	case KindGamma:
		return "g"
	case KindDelta:
		return "d"
	}
	return ""
}

// dispatchSparse misses five kinds; the report elides past the fourth.
func dispatchSparse(k Kind) bool {
	switch k { // want "missing KindAlpha, KindBeta, KindGamma, KindDelta and 1 more"
	case KindZeta:
		return true
	}
	return false
}

// dispatchComplete handles every kind, grouped cases included: clean.
func dispatchComplete(k Kind) string {
	switch k {
	case KindAlpha, KindBeta:
		return "early"
	case KindGamma:
		return "g"
	case KindDelta, KindEpsilon:
		return "late"
	case KindZeta:
		return "z"
	}
	return ""
}

// dispatchDefault opts out of exhaustiveness with a default clause: clean.
func dispatchDefault(k Kind) string {
	switch k {
	case KindAlpha:
		return "a"
	default:
		return "other"
	}
}

// dispatchUntagged is a boolean selection chain, not a kind dispatch:
// clean even though the conditions mention kinds.
func dispatchUntagged(k Kind) string {
	switch {
	case k == KindAlpha:
		return "a"
	}
	return ""
}

// otherSwitch dispatches on a type that is not obs.Kind: clean.
func otherSwitch(n int) string {
	switch n {
	case 1:
		return "one"
	}
	return ""
}

// positional is an ordinary positional array literal, not the keyed-table
// idiom: clean.
var positional = [3]string{"a", "b", "c"}

func use(k Kind) (string, string, bool, string, string, string, [3]string) {
	return kindNames[k] + kindShort[k], dispatchIncomplete(k), dispatchSparse(k),
		dispatchComplete(k), dispatchDefault(k) + dispatchUntagged(k), otherSwitch(int(k)), positional
}

var _ = use
