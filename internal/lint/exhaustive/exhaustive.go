// Package exhaustive proves at compile time what the obs package's
// runtime fences (TestKindTableComplete, TestKindMaskBits,
// invariant.TestKindRoleComplete) only verify at test time: nothing in the
// tree can silently ignore an event kind. It checks three properties
// around the obs.Kind enumeration:
//
//  1. Every `switch` over obs.Kind either handles all declared kinds or
//     carries a `default` clause. A selective dispatch without a default
//     is exactly the code that swallows a newly added kind — the switch
//     compiles, the new event arrives, and nothing happens.
//
//  2. Every keyed array table indexed by kind (the `[numKinds]T{Kind...:
//     ...}` idiom, e.g. obs.kindNames or invariant's role tables) has an
//     entry for every declared kind. A missing row is a zero value that
//     leaks to callers as an empty name or a dropped rule.
//
//  3. The declaring package keeps the enumeration within the bus's uint64
//     subscription mask: at most 64 kinds. Kind 64 would shift out of the
//     mask and become unsubscribable without any build error.
//
// The declared-kind set is the Kind-typed package constants whose names
// start with "Kind", which excludes the numKinds sentinel by construction.
// The analyzer keys on the type identity — a named type `Kind` declared in
// a package named `obs` — so it follows the enum across packages (tcp,
// invariant, sim) without hard-coding the import path.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"hydranet/internal/lint"
)

// Analyzer is the exhaustiveness checker for obs.Kind switches and tables.
var Analyzer = &lint.Analyzer{
	Name: "exhaustive",
	Doc:  "switches and keyed tables over obs.Kind must cover every declared kind or opt out with a default clause",
	Run:  run,
}

func run(pass *lint.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			checkSwitch(pass, n)
		case *ast.CompositeLit:
			checkTable(pass, n)
		}
		return true
	})
	checkMaskCapacity(pass)
	return nil
}

// kindType reports whether t (after unwrapping aliases) is the obs.Kind
// enumeration type, returning the named type when it is.
func kindType(t types.Type) (*types.Named, bool) {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return nil, false
	}
	return named, true
}

// declaredKinds returns the enum's declared members — the Kind-typed
// constants in the declaring package whose names begin with "Kind" —
// keyed by exact constant value, plus the names in declaration-value
// order. The numKinds sentinel fails the name-prefix test and stays out.
func declaredKinds(named *types.Named) (byValue map[string]string, names []string) {
	byValue = map[string]string{}
	scope := named.Obj().Pkg().Scope()
	type decl struct {
		name string
		val  int64
	}
	var decls []decl
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Kind") {
			continue
		}
		if !types.Identical(types.Unalias(c.Type()), named) {
			continue
		}
		byValue[c.Val().ExactString()] = name
		v, _ := constant.Int64Val(c.Val())
		decls = append(decls, decl{name, v})
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].val < decls[j].val })
	for _, d := range decls {
		names = append(names, d.name)
	}
	return byValue, names
}

// checkSwitch flags a switch over obs.Kind that neither handles every
// declared kind nor has a default clause.
func checkSwitch(pass *lint.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := kindType(tv.Type)
	if !ok {
		return
	}
	byValue, order := declaredKinds(named)
	handled := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: the switch opted out of exhaustiveness
		}
		for _, e := range cc.List {
			if v := pass.TypesInfo.Types[e].Value; v != nil {
				handled[v.ExactString()] = true
			}
		}
	}
	missing := missingKinds(byValue, order, handled)
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Switch,
		"switch on %s is not exhaustive: missing %s; a newly added kind falls through silently — handle the missing kinds or add a default clause",
		types.TypeString(named, types.RelativeTo(pass.Pkg)), joinKinds(missing))
}

// checkTable flags a keyed array literal indexed by obs.Kind constants
// that omits a declared kind: the missing row is a silent zero value.
func checkTable(pass *lint.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	if _, isArray := types.Unalias(tv.Type).Underlying().(*types.Array); !isArray {
		return
	}
	var named *types.Named
	handled := map[string]bool{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return // positional rows: not the keyed-table idiom
		}
		ktv, ok := pass.TypesInfo.Types[kv.Key]
		if !ok || ktv.Value == nil {
			return
		}
		kn, ok := kindType(ktv.Type)
		if !ok {
			return // keyed by something other than obs.Kind
		}
		named = kn
		handled[ktv.Value.ExactString()] = true
	}
	if named == nil {
		return
	}
	byValue, order := declaredKinds(named)
	missing := missingKinds(byValue, order, handled)
	if len(missing) == 0 {
		return
	}
	pass.Reportf(lit.Pos(),
		"keyed kind table is missing rows for %s: every declared kind needs an entry here, or the zero value leaks as a blank row",
		joinKinds(missing))
}

// checkMaskCapacity reports, once, when the package declaring obs.Kind has
// grown past the 64 kinds a uint64 subscription mask can address.
func checkMaskCapacity(pass *lint.Pass) {
	if pass.Pkg.Name() != "obs" {
		return
	}
	obj, ok := pass.Pkg.Scope().Lookup("Kind").(*types.TypeName)
	if !ok {
		return
	}
	named, ok := kindType(obj.Type())
	if !ok {
		return
	}
	if _, names := declaredKinds(named); len(names) > 64 {
		pass.Reportf(obj.Pos(),
			"%d event kinds exceed the 64-bit subscription mask: Bus.Enabled tests bit 1<<k in a uint64, so kinds past 63 can never be subscribed — widen the mask before adding kinds", len(names))
	}
}

// missingKinds returns, in declaration order, the declared kind names with
// no entry in handled.
func missingKinds(byValue map[string]string, order []string, handled map[string]bool) []string {
	covered := map[string]bool{}
	for v := range handled {
		if name, ok := byValue[v]; ok {
			covered[name] = true
		}
	}
	var missing []string
	for _, name := range order {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	return missing
}

// joinKinds renders a missing-kind list, eliding past the fourth entry so
// a nearly empty switch doesn't report all 22 kinds.
func joinKinds(names []string) string {
	const max = 4
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return strings.Join(names[:max], ", ") +
		" and " + strconv.Itoa(len(names)-max) + " more"
}
