package series

import "time"

// Verdict is a replica health classification.
type Verdict uint8

// Health verdicts, ordered by severity; the numeric value is what the
// health gauge series records.
const (
	Healthy Verdict = iota
	Degraded
	Dead
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// HealthConfig tunes the scorer. The zero value of any field selects its
// default.
type HealthConfig struct {
	// RetransmitRate is the per-interval client-retransmission count at or
	// above which the replica set's distress latch arms. Default 1: any
	// observed retransmission arms it. Under exponential RTO backoff the
	// client's retransmissions arrive seconds apart, so the latch stays
	// armed between them and only clears once the set flows cleanly again
	// (deposits progressing, no retransmissions, no replica trailing by
	// LagBytes).
	RetransmitRate float64
	// LagBytes is the deposit-cursor spread (cluster max minus min) below
	// which the replica set counts as "in step" for clearing the distress
	// latch. Default 1460 (one MSS). Spread is NOT the straggler signal —
	// chain position skews healthy cursors by tens of kilobytes mid-stream,
	// and a slow tail freezes the whole set at equal cursors — it only
	// gates when distress is over.
	LagBytes float64
	// StallBacklog is how far a replica's serial CPU may run behind frame
	// arrival (ReplicaSample.ProcBacklog) before it is the straggler while
	// the latch is armed. Default 100ms: a keeping-up replica's backlog is
	// microseconds; a gray-failing one holds seconds of queued frames.
	StallBacklog time.Duration
	// Sustain is how many consecutive distressed intervals a replica must
	// accumulate before its verdict drops to Degraded. Default 2.
	Sustain int
	// DeadAfter is how many consecutive intervals a live replica may
	// receive nothing while a peer is receiving traffic before it is
	// declared Dead (unresponsive, not merely slow). Default 20.
	DeadAfter int
	// Recover is how many consecutive clean intervals clear a Degraded (or
	// revived Dead) verdict back to Healthy. Default 5.
	Recover int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.RetransmitRate <= 0 {
		c.RetransmitRate = 1
	}
	if c.LagBytes <= 0 {
		c.LagBytes = 1460
	}
	if c.StallBacklog <= 0 {
		c.StallBacklog = 100 * time.Millisecond
	}
	if c.Sustain <= 0 {
		c.Sustain = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 20
	}
	if c.Recover <= 0 {
		c.Recover = 5
	}
	return c
}

// ReplicaSample is one replica's cumulative counters at a tick. The scorer
// diffs consecutive samples itself, so callers feed raw snapshot values.
type ReplicaSample struct {
	Name string
	// Alive is the fail-stop flag: false means the host is crashed.
	Alive bool
	// PeerRetransmits is the cumulative count of retransmitted segments
	// this replica has received from its peers — for a replica, the
	// client's retransmissions, the paper's own failure-detector signal.
	PeerRetransmits float64
	// DepositedBytes is the cumulative payload bytes deposited to the
	// application (tcp ConnCounters.BytesReceived).
	DepositedBytes float64
	// SegsIn is the cumulative TCP segments received.
	SegsIn float64
	// ProcBacklog is the host's instantaneous ingress-processing backlog:
	// how far its serial CPU is running behind frame arrival. A gauge, not
	// a counter.
	ProcBacklog time.Duration
}

// VerdictChange records a verdict transition.
type VerdictChange struct {
	T       time.Duration `json:"t"`
	Verdict Verdict       `json:"verdict"`
}

type replicaHealth struct {
	name    string
	verdict Verdict

	prev    ReplicaSample
	started bool

	distressed int // consecutive distressed intervals
	clean      int // consecutive clean intervals
	silent     int // consecutive zero-SegsIn intervals while peers receive

	firstDegraded time.Duration
	firstDead     time.Duration
	history       []VerdictChange
}

// HealthScorer turns per-replica telemetry series into healthy/degraded/
// dead verdicts. Its model of the paper's gray-failure gap: the threshold
// detector only trips after the client has retransmitted
// RetransmitThreshold times under exponential RTO backoff (seconds), but a
// slow replica betrays itself within a sampling interval or two.
//
// Two signals combine. The network-side signal is the distress latch:
// client retransmissions (which the redirector multicasts to every
// replica) arm it, and it holds until the set is depositing cleanly in
// step again — a latch, not a per-interval test, because backoff spaces
// retransmits further apart than any reasonable sampling cadence. The
// host-side signal attributes the distress: while the latch is armed, the
// replica whose ingress-processing backlog exceeds StallBacklog for
// Sustain consecutive intervals is the straggler and drops to Degraded.
// Deposit-cursor lag deliberately plays no part in attribution — chain
// position skews healthy cursors mid-stream, and a slow chain tail
// freezes every cursor at the same value, so the cursor geometry points
// at the wrong host exactly when it matters.
//
// A replica is Dead when its host is down (fail-stop) or when it has been
// silent for DeadAfter intervals while peers receive traffic. Dead beats
// Degraded; a revived replica walks back to Healthy through Recover clean
// intervals.
type HealthScorer struct {
	cfg      HealthConfig
	replicas map[string]*replicaHealth
	order    []*replicaHealth
	latched  bool // retransmissions seen, set not yet back in step
}

// NewHealthScorer creates a scorer.
func NewHealthScorer(cfg HealthConfig) *HealthScorer {
	return &HealthScorer{cfg: cfg.withDefaults(), replicas: make(map[string]*replicaHealth)}
}

// Tick scores one sampling interval. samples carries every watched
// replica's cumulative counters, in a caller-stable order (verdict
// evaluation compares replicas against each other, so they arrive
// together). The first tick only establishes baselines.
func (h *HealthScorer) Tick(now time.Duration, samples []ReplicaSample) {
	// Pass 1: interval deltas and cross-replica context.
	var maxDeposited, minDeposited float64
	var maxRetrans float64
	var maxSegsIn float64
	var maxDepositDelta float64
	sawStarted := false
	for _, s := range samples {
		r := h.replica(s.Name)
		if !r.started {
			continue
		}
		if !sawStarted || s.DepositedBytes > maxDeposited {
			maxDeposited = s.DepositedBytes
		}
		if !sawStarted || s.DepositedBytes < minDeposited {
			minDeposited = s.DepositedBytes
		}
		sawStarted = true
		if d := s.PeerRetransmits - r.prev.PeerRetransmits; d > maxRetrans {
			maxRetrans = d
		}
		if d := s.SegsIn - r.prev.SegsIn; d > maxSegsIn {
			maxSegsIn = d
		}
		if d := s.DepositedBytes - r.prev.DepositedBytes; d > maxDepositDelta {
			maxDepositDelta = d
		}
	}
	// The distress latch: arm on any interval with client retransmissions,
	// clear only once the set is flowing cleanly again — deposits
	// progressing, cursors in step, no fresh retransmissions. A stalled
	// set (no progress at all) stays latched: exponential backoff means
	// the retransmits that prove the stall land many intervals apart.
	if maxRetrans >= h.cfg.RetransmitRate {
		h.latched = true
	} else if maxDepositDelta > 0 && maxDeposited-minDeposited < h.cfg.LagBytes {
		h.latched = false
	}
	// Pass 2: per-replica verdicts.
	for _, s := range samples {
		r := h.replica(s.Name)
		if !r.started {
			r.prev = s
			r.started = true
			continue
		}
		segsInDelta := s.SegsIn - r.prev.SegsIn
		r.prev = s

		switch {
		case !s.Alive:
			r.silent = 0
			r.distressed = 0
			r.clean = 0
			h.setVerdict(r, Dead, now)
			continue
		case segsInDelta <= 0 && maxSegsIn > 0:
			// Peers are receiving; this replica hears nothing. The
			// redirector multicasts every client packet, so sustained
			// silence means the replica is unreachable, not slow.
			r.silent++
			if r.silent >= h.cfg.DeadAfter {
				r.distressed = 0
				r.clean = 0
				h.setVerdict(r, Dead, now)
				continue
			}
		default:
			r.silent = 0
		}

		distressed := h.latched && s.ProcBacklog >= h.cfg.StallBacklog
		if distressed {
			r.distressed++
			r.clean = 0
			if r.distressed >= h.cfg.Sustain && r.verdict == Healthy {
				h.setVerdict(r, Degraded, now)
			}
		} else {
			r.distressed = 0
			r.clean++
			if r.verdict != Healthy && r.clean >= h.cfg.Recover {
				h.setVerdict(r, Healthy, now)
			}
		}
	}
}

func (h *HealthScorer) replica(name string) *replicaHealth {
	if r, ok := h.replicas[name]; ok {
		return r
	}
	r := &replicaHealth{name: name}
	h.replicas[name] = r
	h.order = append(h.order, r)
	return r
}

func (h *HealthScorer) setVerdict(r *replicaHealth, v Verdict, now time.Duration) {
	if r.verdict == v {
		return
	}
	r.verdict = v
	r.history = append(r.history, VerdictChange{T: now, Verdict: v})
	if v == Degraded && r.firstDegraded == 0 {
		r.firstDegraded = now
	}
	if v == Dead && r.firstDead == 0 {
		r.firstDead = now
	}
}

// Verdict returns the replica's current verdict (Healthy if unknown).
func (h *HealthScorer) Verdict(name string) Verdict {
	if r, ok := h.replicas[name]; ok {
		return r.verdict
	}
	return Healthy
}

// FirstDegradedAt returns when the replica first dropped to Degraded.
func (h *HealthScorer) FirstDegradedAt(name string) (time.Duration, bool) {
	if r, ok := h.replicas[name]; ok && r.firstDegraded != 0 {
		return r.firstDegraded, true
	}
	return 0, false
}

// FirstDeadAt returns when the replica was first declared Dead.
func (h *HealthScorer) FirstDeadAt(name string) (time.Duration, bool) {
	if r, ok := h.replicas[name]; ok && r.firstDead != 0 {
		return r.firstDead, true
	}
	return 0, false
}

// History returns the replica's verdict transitions in order.
func (h *HealthScorer) History(name string) []VerdictChange {
	if r, ok := h.replicas[name]; ok {
		return append([]VerdictChange(nil), r.history...)
	}
	return nil
}

// Replicas returns the watched replica names in first-seen order.
func (h *HealthScorer) Replicas() []string {
	out := make([]string, len(h.order))
	for i, r := range h.order {
		out[i] = r.name
	}
	return out
}
