// Package series is the simulator's time-series layer: fixed-capacity,
// ring-buffered series of (virtual time, value) points, fed by a periodic
// Sampler scheduled on the discrete-event clock. It follows the obs.Bus
// contract — zero allocation on the recording path and zero cost when
// nothing is attached — so a sampler can run inside measurement loops
// without perturbing what it measures.
//
// Two series kinds exist. A Counter series records per-interval increments
// of a monotonic counter (the sampler diffs cumulative counters before
// observing); its run-wide Total survives ring eviction. A Gauge series
// records instantaneous values (queue depth, srtt, cwnd); its run-wide
// mean/max survive eviction. The retained window — the last Cap() points —
// is what timeline reports render; the aggregates are what run diffs
// compare.
package series

import "time"

// Kind distinguishes counter (per-interval increment) from gauge
// (instantaneous value) series.
type Kind uint8

// Series kinds.
const (
	Counter Kind = iota
	Gauge
)

// String names the kind as it appears in exports.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// KindByName parses an exported kind name.
func KindByName(s string) (Kind, bool) {
	switch s {
	case "counter":
		return Counter, true
	case "gauge":
		return Gauge, true
	}
	return 0, false
}

// Point is one sample: a virtual-clock instant and a value.
type Point struct {
	T time.Duration `json:"t"`
	V float64       `json:"v"`
}

// Series is one named time series backed by a fixed-capacity ring: Observe
// never allocates, and once the ring fills the oldest point is evicted.
// Run-wide aggregates (Count, Total, Max, Mean, Last) cover every point
// ever observed, not just the retained window.
type Series struct {
	name string
	kind Kind
	unit string

	pts  []Point // ring storage, len == capacity
	head int     // index of the oldest retained point
	n    int     // retained points

	count uint64  // points ever observed
	total float64 // sum of observed values
	max   float64
	last  float64
}

// newSeries builds a series with the given ring capacity (minimum 1).
func newSeries(name string, kind Kind, unit string, capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{name: name, kind: kind, unit: unit, pts: make([]Point, capacity)}
}

// Observe appends one point, evicting the oldest if the ring is full.
// This is the sampler's per-tick hot path.
//
//hydralint:zeroalloc
func (s *Series) Observe(t time.Duration, v float64) {
	i := s.head + s.n
	if i >= len(s.pts) {
		i -= len(s.pts)
	}
	s.pts[i] = Point{T: t, V: v}
	if s.n < len(s.pts) {
		s.n++
	} else {
		s.head++
		if s.head == len(s.pts) {
			s.head = 0
		}
	}
	s.count++
	s.total += v
	if s.count == 1 || v > s.max {
		s.max = v
	}
	s.last = v
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Kind returns the series kind.
func (s *Series) Kind() Kind { return s.kind }

// Unit returns the value unit ("" if unitless).
func (s *Series) Unit() string { return s.unit }

// Len returns the number of retained points.
func (s *Series) Len() int { return s.n }

// Cap returns the ring capacity.
func (s *Series) Cap() int { return len(s.pts) }

// Count returns the number of points ever observed (≥ Len once the ring
// has wrapped).
func (s *Series) Count() uint64 { return s.count }

// Total returns the sum of every observed value — for a counter series,
// the run-wide total.
func (s *Series) Total() float64 { return s.total }

// Max returns the largest observed value (0 with no points).
func (s *Series) Max() float64 { return s.max }

// Mean returns the run-wide mean observed value (0 with no points).
func (s *Series) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.total / float64(s.count)
}

// Last returns the most recent value (0 with no points).
func (s *Series) Last() float64 { return s.last }

// At returns the i-th retained point, oldest first (0 ≤ i < Len).
func (s *Series) At(i int) Point {
	j := s.head + i
	if j >= len(s.pts) {
		j -= len(s.pts)
	}
	return s.pts[j]
}

// Points appends the retained window, oldest first, to dst and returns it.
func (s *Series) Points(dst []Point) []Point {
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.At(i))
	}
	return dst
}

// Set is an ordered registry of series. Iteration follows creation order —
// never map order — so every export and report is byte-stable across runs.
type Set struct {
	byName   map[string]*Series
	order    []*Series
	capacity int
}

// DefaultCapacity is the per-series ring capacity NewSet uses when given 0:
// at the default 100 ms cadence it retains the last ~100 virtual seconds.
const DefaultCapacity = 1024

// NewSet creates a registry whose series retain capacity points each
// (DefaultCapacity if 0).
func NewSet(capacity int) *Set {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Set{byName: make(map[string]*Series), capacity: capacity}
}

// Counter returns the named counter series, creating it on first use.
func (s *Set) Counter(name, unit string) *Series { return s.series(name, Counter, unit) }

// Gauge returns the named gauge series, creating it on first use.
func (s *Set) Gauge(name, unit string) *Series { return s.series(name, Gauge, unit) }

func (s *Set) series(name string, kind Kind, unit string) *Series {
	if sr, ok := s.byName[name]; ok {
		return sr
	}
	sr := newSeries(name, kind, unit, s.capacity)
	s.byName[name] = sr
	s.order = append(s.order, sr)
	return sr
}

// Get returns the named series (nil if absent).
func (s *Set) Get(name string) *Series { return s.byName[name] }

// Len returns the number of registered series.
func (s *Set) Len() int { return len(s.order) }

// Each visits every series in creation order.
func (s *Set) Each(fn func(*Series)) {
	for _, sr := range s.order {
		fn(sr)
	}
}
