package series

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hydranet/internal/sim"
)

func TestSeriesRingEviction(t *testing.T) {
	s := newSeries("x", Gauge, "", 4)
	for i := 0; i < 10; i++ {
		s.Observe(time.Duration(i)*time.Millisecond, float64(i))
	}
	if s.Len() != 4 || s.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", s.Len(), s.Cap())
	}
	if s.Count() != 10 {
		t.Fatalf("count=%d, want 10", s.Count())
	}
	// Retained window is the last four points, oldest first.
	for i := 0; i < 4; i++ {
		p := s.At(i)
		want := float64(6 + i)
		if p.V != want || p.T != time.Duration(6+i)*time.Millisecond {
			t.Fatalf("At(%d)=%+v, want v=%v", i, p, want)
		}
	}
	if s.Total() != 45 || s.Max() != 9 || s.Last() != 9 {
		t.Fatalf("total=%v max=%v last=%v, want 45/9/9", s.Total(), s.Max(), s.Last())
	}
	if got := s.Mean(); got != 4.5 {
		t.Fatalf("mean=%v, want 4.5", got)
	}
	pts := s.Points(nil)
	if len(pts) != 4 || pts[0].V != 6 || pts[3].V != 9 {
		t.Fatalf("Points=%v", pts)
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	s := newSeries("x", Counter, "", 128)
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(time.Duration(i), float64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestSetOrderAndIdentity(t *testing.T) {
	set := NewSet(8)
	c := set.Counter("b.count", "segments")
	g := set.Gauge("a.depth", "bytes")
	if set.Counter("b.count", "segments") != c {
		t.Fatal("Counter did not return the existing series")
	}
	if set.Get("a.depth") != g || set.Get("missing") != nil {
		t.Fatal("Get mismatch")
	}
	// Iteration follows creation order, not name order.
	var names []string
	set.Each(func(s *Series) { names = append(names, s.Name()) })
	if len(names) != 2 || names[0] != "b.count" || names[1] != "a.depth" {
		t.Fatalf("order=%v, want [b.count a.depth]", names)
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	set := NewSet(8)
	c := set.Counter("retransmits", "segments")
	c.Observe(100*time.Millisecond, 2)
	c.Observe(200*time.Millisecond, 3)
	var buf bytes.Buffer
	meta := Meta{Every: 100 * time.Millisecond, Ticks: 2, Seed: 7}
	if err := WriteJSONL(&buf, meta, set); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no meta line")
	}
	var gotMeta Meta
	if err := json.Unmarshal(sc.Bytes(), &gotMeta); err != nil {
		t.Fatal(err)
	}
	if gotMeta.Version != FormatVersion || gotMeta.Every != 100*time.Millisecond || gotMeta.Seed != 7 {
		t.Fatalf("meta=%+v", gotMeta)
	}
	if !sc.Scan() {
		t.Fatal("no series line")
	}
	var d Data
	if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Name != "retransmits" || d.Kind != "counter" || d.Total != 5 || len(d.Points) != 2 {
		t.Fatalf("data=%+v", d)
	}
	if d.Points[1].T != 200*time.Millisecond || d.Points[1].V != 3 {
		t.Fatalf("points=%+v", d.Points)
	}
}

func TestWriteCSV(t *testing.T) {
	set := NewSet(8)
	set.Gauge("depth", "bytes").Observe(time.Second, 42)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Meta{Every: time.Second, Ticks: 1}, set); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines=%q", lines)
	}
	if !strings.HasPrefix(lines[0], "# hydranet-series v1 every_ns=1000000000") {
		t.Fatalf("header=%q", lines[0])
	}
	if lines[2] != "depth,gauge,bytes,1000000000,42" {
		t.Fatalf("row=%q", lines[2])
	}
}

func TestSamplerCadenceAndStop(t *testing.T) {
	sched := sim.NewScheduler(1)
	sm := NewSampler(sched, 10*time.Millisecond)
	var at []time.Duration
	sm.OnSample(func(now time.Duration) { at = append(at, now) })
	sm.Start()
	sm.Start() // idempotent
	sched.RunUntil(35 * time.Millisecond)
	if len(at) != 3 {
		t.Fatalf("ticks=%v, want 3 (10/20/30ms)", at)
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if at[i] != want*time.Millisecond {
			t.Fatalf("tick %d at %v, want %vms", i, at[i], want)
		}
	}
	if sm.Ticks() != 3 || !sm.Running() {
		t.Fatalf("ticks=%d running=%v", sm.Ticks(), sm.Running())
	}
	sm.Stop()
	sched.RunUntil(100 * time.Millisecond)
	if len(at) != 3 || sm.Running() {
		t.Fatalf("sampler ticked after Stop: %v", at)
	}
}

func TestSamplerTickDoesNotAllocate(t *testing.T) {
	sched := sim.NewScheduler(1)
	sm := NewSampler(sched, time.Millisecond)
	s := newSeries("x", Gauge, "", 64)
	sm.OnSample(func(now time.Duration) { s.Observe(now, 1) })
	sm.Start()
	sched.RunUntil(5 * time.Millisecond) // warm the timer free-list
	allocs := testing.AllocsPerRun(200, func() {
		sched.RunUntil(sched.Now() + time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("sampler tick allocates %.1f/op, want 0", allocs)
	}
}
