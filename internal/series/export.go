package series

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"hydranet/internal/obs"
)

// FormatVersion is the exported series format version.
const FormatVersion = 1

// Meta is the run-level header exported ahead of the series: the sampling
// cadence (needed to interpret counter increments as rates), the seed, and
// — when a failover probe was attached — the Table-2 timeline the report
// renderer aligns phases to.
type Meta struct {
	Version  int                 `json:"hydranet_series"`
	Every    time.Duration       `json:"every_ns"`
	Ticks    uint64              `json:"ticks"`
	Seed     int64               `json:"seed,omitempty"`
	Failover *obs.FailoverReport `json:"failover,omitempty"`
}

// Data is one series in exported form: the run-wide aggregates plus the
// retained window of points.
type Data struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Unit   string  `json:"unit,omitempty"`
	Count  uint64  `json:"count"`
	Total  float64 `json:"total"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Last   float64 `json:"last"`
	Points []Point `json:"points"`
}

// Data exports the series.
func (s *Series) Data() Data {
	return Data{
		Name:  s.name,
		Kind:  s.kind.String(),
		Unit:  s.unit,
		Count: s.count,
		Total: s.total,
		Mean:  s.Mean(),
		Max:   s.max,
		Last:  s.last,
		Points: s.Points(make([]Point, 0, s.n)),
	}
}

// WriteJSONL exports the set as JSON lines: the Meta header first, then one
// Data object per series in creation order. This is the canonical format —
// lossless for aggregates, failover timeline included.
func WriteJSONL(w io.Writer, meta Meta, set *Set) error {
	meta.Version = FormatVersion
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	var err error
	set.Each(func(s *Series) {
		if err != nil {
			return
		}
		err = enc.Encode(s.Data())
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCSV exports the retained windows in long form —
// name,kind,unit,t_ns,value — behind a comment header carrying the
// cadence. CSV is for spreadsheets and plotting; it drops the run-wide
// aggregates (a loader recomputes them over the window) and the failover
// report. JSONL is the canonical format.
func WriteCSV(w io.Writer, meta Meta, set *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# hydranet-series v%d every_ns=%d ticks=%d seed=%d\n",
		FormatVersion, int64(meta.Every), meta.Ticks, meta.Seed); err != nil {
		return err
	}
	if _, err := io.WriteString(bw, "name,kind,unit,t_ns,value\n"); err != nil {
		return err
	}
	var err error
	set.Each(func(s *Series) {
		if err != nil {
			return
		}
		for i := 0; i < s.Len(); i++ {
			p := s.At(i)
			_, err = fmt.Fprintf(bw, "%s,%s,%s,%d,%s\n",
				s.Name(), s.Kind(), s.Unit(), int64(p.T),
				strconv.FormatFloat(p.V, 'g', -1, 64))
			if err != nil {
				return
			}
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
