package series

import (
	"time"

	"hydranet/internal/sim"
)

// DefaultCadence is the sampling interval used when a Sampler is created
// with 0: ten ticks per virtual second, fine enough to catch a sub-second
// gray failure, coarse enough to stay far off the packet-rate hot path.
const DefaultCadence = 100 * time.Millisecond

// Sampler drives periodic scrapes on the virtual clock: every cadence it
// runs its probe functions, which read cumulative counters and feed series.
// The tick itself is allocation-free (the underlying sim.Timer caches its
// fire closure), so an armed sampler costs one scheduler event per interval
// and nothing on any packet path.
//
// A started sampler reschedules itself forever; Net.Run()-until-idle
// callers must Stop it or the network never goes idle. RunFor/RunUntil
// loops (every CLI and testbed harness) need no Stop.
type Sampler struct {
	every  time.Duration
	timer  *sim.Timer
	now    func() time.Duration
	probes []func(now time.Duration)
	ticks  uint64
}

// NewSampler creates a stopped sampler on the scheduler with the given
// cadence (DefaultCadence if 0).
func NewSampler(sched *sim.Scheduler, every time.Duration) *Sampler {
	if every <= 0 {
		every = DefaultCadence
	}
	s := &Sampler{every: every, now: sched.Now}
	s.timer = sim.NewTimer(sched, s.tick)
	return s
}

// OnSample registers a probe run on every tick, in registration order.
func (s *Sampler) OnSample(probe func(now time.Duration)) {
	s.probes = append(s.probes, probe)
}

// Start arms the sampler: the first tick fires one cadence from now.
// Starting a running sampler is a no-op.
func (s *Sampler) Start() {
	if !s.timer.Armed() {
		s.timer.Reset(s.every)
	}
}

// Stop disarms the sampler. Probes and series are retained; Start resumes.
func (s *Sampler) Stop() { s.timer.Stop() }

// Running reports whether the sampler is armed.
func (s *Sampler) Running() bool { return s.timer.Armed() }

// Every returns the sampling cadence.
func (s *Sampler) Every() time.Duration { return s.every }

// Ticks returns how many times the sampler has fired.
func (s *Sampler) Ticks() uint64 { return s.ticks }

// tick runs the probes and reschedules. The loop and reschedule are
// allocation-free; each probe owns its own budget (facade probes read
// snapshots, which allocate — that cost is per tick, not per packet).
//
//hydralint:zeroalloc
func (s *Sampler) tick() {
	now := s.now()
	s.ticks++
	for _, p := range s.probes {
		p(now)
	}
	s.timer.Reset(s.every)
}
