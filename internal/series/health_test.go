package series

import (
	"testing"
	"time"
)

// tickAt feeds the scorer one interval for a two-replica set.
func tickAt(h *HealthScorer, t time.Duration, s0, s1 ReplicaSample) {
	s0.Name, s1.Name = "s0", "s1"
	h.Tick(t, []ReplicaSample{s0, s1})
}

func TestHealthScorerFlagsStraggler(t *testing.T) {
	h := NewHealthScorer(HealthConfig{Sustain: 2})
	ms := func(n int) time.Duration { return time.Duration(n) * 100 * time.Millisecond }

	// Baseline + healthy streaming: both replicas deposit in step.
	tickAt(h, ms(1), ReplicaSample{Alive: true}, ReplicaSample{Alive: true})
	for i := 2; i <= 4; i++ {
		d := float64(i * 1000)
		tickAt(h, ms(i),
			ReplicaSample{Alive: true, DepositedBytes: d, SegsIn: float64(i)},
			ReplicaSample{Alive: true, DepositedBytes: d, SegsIn: float64(i)})
	}
	if v := h.Verdict("s1"); v != Healthy {
		t.Fatalf("healthy phase: s1=%v", v)
	}

	// Gray failure: s1's CPU falls behind frame arrival while client
	// retransmissions arrive at both replicas (the redirector multicasts
	// them). The retransmissions arm the latch; the backlog names s1.
	for i := 5; i <= 7; i++ {
		tickAt(h, ms(i),
			ReplicaSample{Alive: true, DepositedBytes: 16000, PeerRetransmits: float64(i), SegsIn: float64(i)},
			ReplicaSample{Alive: true, DepositedBytes: 4000, PeerRetransmits: float64(i), SegsIn: float64(i),
				ProcBacklog: 300 * time.Millisecond})
	}
	if v := h.Verdict("s1"); v != Degraded {
		t.Fatalf("straggling s1=%v, want degraded", v)
	}
	// The replica that is keeping up is not blamed.
	if v := h.Verdict("s0"); v != Healthy {
		t.Fatalf("keeping-up s0=%v, want healthy", v)
	}
	at, ok := h.FirstDegradedAt("s1")
	if !ok || at != ms(6) {
		t.Fatalf("FirstDegradedAt=%v,%v want %v (sustain=2 → second distressed tick)", at, ok, ms(6))
	}

	// Recovery: the backlog drains and the set deposits in step again with
	// no retransmissions, so the distress latch clears and the verdict
	// decays back to Healthy.
	for i := 8; i <= 13; i++ {
		d := float64(16000 + i*1000)
		tickAt(h, ms(i),
			ReplicaSample{Alive: true, DepositedBytes: d, PeerRetransmits: 7, SegsIn: float64(i)},
			ReplicaSample{Alive: true, DepositedBytes: d, PeerRetransmits: 7, SegsIn: float64(i)})
	}
	if v := h.Verdict("s1"); v != Healthy {
		t.Fatalf("recovered s1=%v, want healthy", v)
	}
	hist := h.History("s1")
	if len(hist) != 2 || hist[0].Verdict != Degraded || hist[1].Verdict != Healthy {
		t.Fatalf("history=%v", hist)
	}
}

// TestHealthScorerLatchSurvivesBackoffGaps pins the distress latch: under
// exponential RTO backoff the client's retransmissions arrive seconds
// apart, so most sampling intervals in the middle of a stall show a
// backlogged straggler but no fresh retransmission. The latch must hold
// across those gaps — and the straggler trickling the odd deposit must
// not count as recovery while its cursor still trails the set.
func TestHealthScorerLatchSurvivesBackoffGaps(t *testing.T) {
	h := NewHealthScorer(HealthConfig{Sustain: 2})
	ms := func(n int) time.Duration { return time.Duration(n) * 100 * time.Millisecond }

	tickAt(h, ms(1), ReplicaSample{Alive: true}, ReplicaSample{Alive: true})
	// One retransmission burst, then silence: the client is in backoff.
	tickAt(h, ms(2),
		ReplicaSample{Alive: true, DepositedBytes: 40000, PeerRetransmits: 3, SegsIn: 2},
		ReplicaSample{Alive: true, DepositedBytes: 10000, PeerRetransmits: 3, SegsIn: 2,
			ProcBacklog: 400 * time.Millisecond})
	for i := 3; i <= 5; i++ {
		// No new retransmits; s1 trickles 1 KB per interval through its
		// clogged queue but stays far behind the cluster-max cursor.
		tickAt(h, ms(i),
			ReplicaSample{Alive: true, DepositedBytes: 40000, PeerRetransmits: 3, SegsIn: float64(i)},
			ReplicaSample{Alive: true, DepositedBytes: float64(10000 + i*1000), PeerRetransmits: 3, SegsIn: float64(i),
				ProcBacklog: 400 * time.Millisecond})
	}
	if v := h.Verdict("s1"); v != Degraded {
		t.Fatalf("lagging s1 during backoff gap=%v, want degraded (latch must hold)", v)
	}
	at, ok := h.FirstDegradedAt("s1")
	if !ok || at != ms(3) {
		t.Fatalf("FirstDegradedAt=%v,%v want %v", at, ok, ms(3))
	}
	// The set closes back in step: latch clears, clean intervals accrue.
	for i := 6; i <= 11; i++ {
		d := float64(40000 + i*1000)
		tickAt(h, ms(i),
			ReplicaSample{Alive: true, DepositedBytes: d, PeerRetransmits: 3, SegsIn: float64(i)},
			ReplicaSample{Alive: true, DepositedBytes: d, PeerRetransmits: 3, SegsIn: float64(i)})
	}
	if v := h.Verdict("s1"); v != Healthy {
		t.Fatalf("caught-up s1=%v, want healthy", v)
	}
}

func TestHealthScorerFailStopIsDead(t *testing.T) {
	h := NewHealthScorer(HealthConfig{})
	tickAt(h, 100*time.Millisecond, ReplicaSample{Alive: true}, ReplicaSample{Alive: true})
	tickAt(h, 200*time.Millisecond, ReplicaSample{Alive: true}, ReplicaSample{Alive: false})
	if v := h.Verdict("s1"); v != Dead {
		t.Fatalf("crashed s1=%v, want dead", v)
	}
	if _, ok := h.FirstDeadAt("s1"); !ok {
		t.Fatal("FirstDeadAt unset")
	}
}

func TestHealthScorerSilentReplicaDies(t *testing.T) {
	h := NewHealthScorer(HealthConfig{DeadAfter: 3})
	ms := func(n int) time.Duration { return time.Duration(n) * 100 * time.Millisecond }
	tickAt(h, ms(1), ReplicaSample{Alive: true}, ReplicaSample{Alive: true})
	// s0 keeps receiving; s1 hears nothing at all (partition, not slowness).
	for i := 2; i <= 5; i++ {
		tickAt(h, ms(i),
			ReplicaSample{Alive: true, SegsIn: float64(i), DepositedBytes: float64(i)},
			ReplicaSample{Alive: true, SegsIn: 1, DepositedBytes: 1})
	}
	if v := h.Verdict("s1"); v != Dead {
		t.Fatalf("silent s1=%v, want dead after 3 silent intervals", v)
	}
	// An idle network (nobody receiving) must never kill anyone.
	h2 := NewHealthScorer(HealthConfig{DeadAfter: 2})
	for i := 1; i <= 6; i++ {
		tickAt(h2, ms(i), ReplicaSample{Alive: true}, ReplicaSample{Alive: true})
	}
	if v := h2.Verdict("s0"); v != Healthy {
		t.Fatalf("idle s0=%v, want healthy", v)
	}
}
