package core_test

import (
	"testing"
	"time"

	"hydranet"
	"hydranet/internal/app"
	"hydranet/internal/core"
)

func TestPromoteDemoteIdempotent(t *testing.T) {
	net := hydranet.New(hydranet.Config{Seed: 81})
	h := net.AddHost("h", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	net.Link(h, rd.Host, hydranet.LinkConfig{})
	net.AutoRoute()
	port := h.FTManager().SetPortOpt(svc, core.ModeBackup, core.DetectorParams{})

	port.Promote()
	port.Promote() // second promote is a no-op
	if port.Mode() != core.ModePrimary {
		t.Fatalf("mode = %v", port.Mode())
	}
	if got := h.FTManager().Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1 (idempotent)", got)
	}
	port.Demote()
	port.Demote()
	if port.Mode() != core.ModeBackup {
		t.Fatalf("mode = %v after demote", port.Mode())
	}
}

func TestChainMsgForUnknownServiceCounted(t *testing.T) {
	net := hydranet.New(hydranet.Config{Seed: 82})
	a := net.AddHost("a", hydranet.HostConfig{})
	b := net.AddHost("b", hydranet.HostConfig{})
	net.Link(a, b, hydranet.LinkConfig{Delay: time.Millisecond})
	net.AutoRoute()
	// Both managers exist; a sends a chain message for a service b never
	// registered.
	_ = a.FTManager()
	mgrB := b.FTManager()
	msg := core.ChainMsg{
		Service: hydranet.ServiceID{Addr: hydranet.MustAddr("9.9.9.9"), Port: 99},
		Client:  hydranet.Endpoint{Addr: 1, Port: 2},
		SndNxt:  10, RcvNxt: 20,
	}
	if err := a.UDP().SendTo(0, core.AckChannelPort,
		hydranet.UDPEndpoint{Addr: b.Addr(), Port: core.AckChannelPort}, msg.Marshal()); err != nil {
		t.Fatal(err)
	}
	net.RunFor(time.Second)
	if got := mgrB.Stats().ChainMsgsOrphan; got != 1 {
		t.Fatalf("orphan chain messages = %d, want 1", got)
	}
}

func TestGarbageOnAckChannelCounted(t *testing.T) {
	net := hydranet.New(hydranet.Config{Seed: 83})
	a := net.AddHost("a", hydranet.HostConfig{})
	b := net.AddHost("b", hydranet.HostConfig{})
	net.Link(a, b, hydranet.LinkConfig{Delay: time.Millisecond})
	net.AutoRoute()
	mgrB := b.FTManager()
	_ = a.UDP().SendTo(0, 1234,
		hydranet.UDPEndpoint{Addr: b.Addr(), Port: core.AckChannelPort}, []byte("not a chain msg"))
	net.RunFor(time.Second)
	if got := mgrB.Stats().ChainMsgsBad; got != 1 {
		t.Fatalf("bad chain messages = %d, want 1", got)
	}
}

// TestChainMsgBeforeSYN: the multicast race — a successor's chain message
// for a connection arrives before our copy of the SYN. The limits must be
// remembered and applied once the connection exists.
func TestChainMsgBeforeSYN(t *testing.T) {
	// Give the future primary a long, slow link so its SYN copy arrives
	// well after the backup has already processed the handshake and sent
	// chain messages.
	net := hydranet.New(hydranet.Config{Seed: 84})
	client := net.AddHost("client", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	s0 := net.AddHost("s0", hydranet.HostConfig{})
	s1 := net.AddHost("s1", hydranet.HostConfig{})
	fast := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	slow := hydranet.LinkConfig{Rate: 10_000_000, Delay: 40 * time.Millisecond}
	net.Link(client, rd.Host, fast)
	net.Link(s0, rd.Host, slow) // primary is far away
	net.Link(s1, rd.Host, fast) // backup is near
	net.AutoRoute()
	ftsvc, err := net.DeployFT(svc, rd, []*hydranet.Host{s0, s1},
		hydranet.FTOptions{}, func(c *hydranet.Conn) { app.Echo(c) })
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()

	conn, _ := client.Dial(svc)
	var echoed []byte
	app.Collect(conn, &echoed)
	app.Source(conn, []byte("racing the chain"), false)
	net.RunFor(10 * time.Second)
	if string(echoed) != "racing the chain" {
		t.Fatalf("echo = %q under SYN/chain race", echoed)
	}
	_ = ftsvc
}

func TestAckChannelPortBusy(t *testing.T) {
	net := hydranet.New(hydranet.Config{Seed: 85})
	h := net.AddHost("h", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	net.Link(h, rd.Host, hydranet.LinkConfig{})
	net.AutoRoute()
	// Squat the acknowledgment-channel port before the manager starts.
	if err := h.UDP().Bind(0, core.AckChannelPort, func(hydranet.UDPEndpoint, hydranet.Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewManager(h.TCP(), h.UDP(), h.Addr()); err == nil {
		t.Fatal("manager bound a busy acknowledgment-channel port")
	}
}

// TestPendingChainEntryExpires: chain messages for a connection whose SYN
// never arrives must not leak placeholder state forever.
func TestPendingChainEntryExpires(t *testing.T) {
	net := hydranet.New(hydranet.Config{Seed: 86})
	a := net.AddHost("a", hydranet.HostConfig{})
	b := net.AddHost("b", hydranet.HostConfig{})
	net.Link(a, b, hydranet.LinkConfig{Delay: time.Millisecond})
	net.AutoRoute()
	_ = a.FTManager()
	port := b.FTManager().SetPortOpt(svc, core.ModeBackup, core.DetectorParams{})
	msg := core.ChainMsg{
		Service: svc,
		Client:  hydranet.Endpoint{Addr: 7, Port: 7},
		SndNxt:  1, RcvNxt: 1,
	}
	_ = a.UDP().SendTo(0, core.AckChannelPort,
		hydranet.UDPEndpoint{Addr: b.Addr(), Port: core.AckChannelPort}, msg.Marshal())
	net.RunFor(time.Second)
	if port.Conns() != 1 {
		t.Fatalf("placeholder not created: %d", port.Conns())
	}
	net.RunFor(2 * time.Minute)
	if port.Conns() != 0 {
		t.Fatalf("placeholder leaked: %d entries after TTL", port.Conns())
	}
}
