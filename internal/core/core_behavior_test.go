package core_test

import (
	"bytes"
	"testing"
	"time"

	"hydranet"
	"hydranet/internal/app"
	"hydranet/internal/core"
)

var svc = hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 80}

// build constructs a client + redirector + n replicas star and deploys an
// echo service.
func build(t *testing.T, seed int64, n int, opts hydranet.FTOptions) (
	*hydranet.Net, *hydranet.Host, *hydranet.FTService, []*hydranet.Host) {
	t.Helper()
	net := hydranet.New(hydranet.Config{Seed: seed})
	client := net.AddHost("client", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	var replicas []*hydranet.Host
	for i := 0; i < n; i++ {
		replicas = append(replicas, net.AddHost("s"+string(rune('0'+i)), hydranet.HostConfig{}))
	}
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(client, rd.Host, link)
	for _, h := range replicas {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()
	s, err := net.DeployFT(svc, rd, replicas, opts, func(c *hydranet.Conn) { app.Echo(c) })
	if err != nil {
		t.Fatal(err)
	}
	net.Settle()
	return net, client, s, replicas
}

// TestChainGatingInvariant samples the chain throughout a transfer and
// asserts the paper's safety property: a replica never deposits (rcvNxt)
// or sends (sndNxt) ahead of its successor.
func TestChainGatingInvariant(t *testing.T) {
	net, client, ftsvc, replicas := build(t, 11, 3, hydranet.FTOptions{})
	conn, err := client.Dial(svc)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	app.Collect(conn, &got)
	app.Source(conn, payload, false)

	deadline := 2 * time.Minute
	violations := 0
	for elapsed := time.Duration(0); elapsed < deadline && len(got) < len(payload); elapsed += 5 * time.Millisecond {
		net.RunFor(5 * time.Millisecond)
		// Collect per-replica cursors for the single connection.
		type cursors struct{ rcv, snd uint32 }
		var chain []cursors
		for _, h := range replicas {
			conns := h.TCP().Conns()
			if len(conns) != 1 {
				chain = nil
				break
			}
			chain = append(chain, cursors{uint32(conns[0].RcvNxt()), uint32(conns[0].SndNxt())})
		}
		for i := 0; i+1 < len(chain); i++ {
			// S_i must not be ahead of S_{i+1}.
			if int32(chain[i].rcv-chain[i+1].rcv) > 0 {
				violations++
				t.Errorf("deposit gate violated at t=%v: S%d rcvNxt=%d > S%d rcvNxt=%d",
					net.Now(), i, chain[i].rcv, i+1, chain[i+1].rcv)
			}
			if int32(chain[i].snd-chain[i+1].snd) > 0 {
				violations++
				t.Errorf("send gate violated at t=%v: S%d sndNxt=%d > S%d sndNxt=%d",
					net.Now(), i, chain[i].snd, i+1, chain[i+1].snd)
			}
		}
		if violations > 5 {
			t.Fatal("too many violations; aborting")
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo incomplete: %d of %d bytes", len(got), len(payload))
	}
	_ = ftsvc
}

// TestBackupsNeverTransmitToClient asserts full suppression: every segment
// the client receives comes from the primary's stack.
func TestBackupsNeverTransmitToClient(t *testing.T) {
	net, client, ftsvc, replicas := build(t, 12, 3, hydranet.FTOptions{})
	conn, _ := client.Dial(svc)
	var got []byte
	app.Collect(conn, &got)
	payload := make([]byte, 64*1024)
	app.Source(conn, payload, true)
	net.RunFor(time.Minute)
	if len(got) != len(payload) {
		t.Fatalf("echo incomplete: %d bytes", len(got))
	}
	for i, h := range replicas[1:] {
		for _, c := range h.TCP().Conns() {
			if c.Stats().SegsSent != 0 {
				t.Errorf("backup %d transmitted %d segments to the client", i+1, c.Stats().SegsSent)
			}
			if c.Stats().SegsSuppressed == 0 {
				t.Errorf("backup %d suppressed nothing — not in the data path", i+1)
			}
		}
	}
	_ = ftsvc
}

// TestDetectorFiresOnStall verifies the failure estimator trips after the
// configured number of client retransmissions.
func TestDetectorFiresOnStall(t *testing.T) {
	opts := hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: 3}}
	net, client, ftsvc, replicas := build(t, 13, 2, opts)
	conn, _ := client.Dial(svc)
	app.Source(conn, []byte("data before failure"), false)
	net.RunFor(2 * time.Second)

	before := replicas[1].FTManager().Stats().Suspicions
	replicas[0].Crash()
	conn.Write([]byte("this write will stall"))
	net.RunFor(30 * time.Second)
	if got := replicas[1].FTManager().Stats().Suspicions; got <= before {
		t.Fatalf("backup raised no suspicion after primary crash (got %d)", got)
	}
	if len(ftsvc.Chain()) != 1 {
		t.Fatalf("chain not reconfigured: %v", ftsvc.Chain())
	}
}

// TestDetectorQuietWhenHealthy: a clean long transfer must not trip the
// estimator (no false positives without loss).
func TestDetectorQuietWhenHealthy(t *testing.T) {
	net, client, ftsvc, replicas := build(t, 14, 2, hydranet.FTOptions{})
	conn, _ := client.Dial(svc)
	var got []byte
	app.Collect(conn, &got)
	payload := make([]byte, 256*1024)
	app.Source(conn, payload, true)
	net.RunFor(2 * time.Minute)
	if len(got) != len(payload) {
		t.Fatalf("echo incomplete: %d bytes", len(got))
	}
	for i, h := range replicas {
		if n := h.FTManager().Stats().Suspicions; n != 0 {
			t.Errorf("replica %d raised %d spurious suspicions", i, n)
		}
	}
	if got := len(ftsvc.Chain()); got != 2 {
		t.Errorf("chain shrank to %d without failures", got)
	}
}

// TestChainLossRecovery: dropped acknowledgment-channel messages cost
// retransmissions but not correctness (the paper's stated trade-off).
func TestChainLossRecovery(t *testing.T) {
	net, client, ftsvc, replicas := build(t, 15, 2, hydranet.FTOptions{})
	for _, h := range replicas {
		h.FTManager().SetChainLoss(0.2)
	}
	conn, _ := client.Dial(svc)
	var got []byte
	app.Collect(conn, &got)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	app.Source(conn, payload, false)
	net.RunFor(5 * time.Minute)
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo with 20%% chain loss incomplete: %d of %d", len(got), len(payload))
	}
	// The reconfiguration machinery may have probed, but with all hosts
	// alive nothing must be removed.
	if got := len(ftsvc.Chain()); got != 2 {
		t.Errorf("chain = %d members, want 2 (no host actually failed)", got)
	}
}

// TestManagerPortLifecycle exercises SetPortOpt / Port / ClearPort.
func TestManagerPortLifecycle(t *testing.T) {
	net := hydranet.New(hydranet.Config{Seed: 16})
	h := net.AddHost("h", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	net.Link(h, rd.Host, hydranet.LinkConfig{})
	net.AutoRoute()
	mgr := h.FTManager()
	port := mgr.SetPortOpt(svc, core.ModeBackup, core.DetectorParams{})
	if port.Mode() != core.ModeBackup {
		t.Fatal("mode not applied")
	}
	if mgr.Port(svc) != port {
		t.Fatal("Port lookup failed")
	}
	// Re-marking updates in place.
	port2 := mgr.SetPortOpt(svc, core.ModePrimary, core.DetectorParams{})
	if port2 != port || port.Mode() != core.ModePrimary {
		t.Fatal("SetPortOpt did not update existing port")
	}
	mgr.ClearPort(svc)
	if mgr.Port(svc) != nil {
		t.Fatal("ClearPort left state behind")
	}
}
