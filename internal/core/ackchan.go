package core

import (
	"errors"

	"hydranet/internal/ipv4"
	"hydranet/internal/tcp"
)

// AckChannelPort is the well-known UDP port of the kernel-to-kernel
// acknowledgment channel between replicas (paper Section 4.3).
const AckChannelPort = 5402

// ChainMsg is one acknowledgment-channel message: the flow-control fields a
// backup strips from a would-be TCP packet, reinterpreted as the sender's
// cursor positions.
//
// SndNxt is the sequence number through which the sender has (logically)
// sent: the predecessor may send any byte k < SndNxt. RcvNxt is the
// sender's ACKNOWLEDGEMENT NUMBER: it has deposited every byte k < RcvNxt,
// so the predecessor may deposit up to there. FIN and SYN occupy sequence
// space, so the same two numbers gate the handshake and teardown too.
type ChainMsg struct {
	Service ServiceID
	Client  tcp.Endpoint
	SndNxt  tcp.Seq
	RcvNxt  tcp.Seq
}

const (
	chainMsgMagic   = 0xFA
	chainMsgVersion = 1
	chainMsgLen     = 22
)

// ErrBadChainMsg reports an undecodable acknowledgment-channel datagram.
var ErrBadChainMsg = errors.New("core: malformed acknowledgment-channel message")

// Marshal encodes the message for the UDP acknowledgment channel.
func (m *ChainMsg) Marshal() []byte {
	b := make([]byte, chainMsgLen)
	b[0] = chainMsgMagic
	b[1] = chainMsgVersion
	putU32(b[2:6], uint32(m.Service.Addr))
	putU16(b[6:8], m.Service.Port)
	putU32(b[8:12], uint32(m.Client.Addr))
	putU16(b[12:14], m.Client.Port)
	putU32(b[14:18], uint32(m.SndNxt))
	putU32(b[18:22], uint32(m.RcvNxt))
	return b
}

// UnmarshalChainMsg decodes an acknowledgment-channel datagram.
func UnmarshalChainMsg(b []byte) (*ChainMsg, error) {
	if len(b) != chainMsgLen || b[0] != chainMsgMagic || b[1] != chainMsgVersion {
		return nil, ErrBadChainMsg
	}
	return &ChainMsg{
		Service: ServiceID{Addr: ipv4.Addr(getU32(b[2:6])), Port: getU16(b[6:8])},
		Client:  tcp.Endpoint{Addr: ipv4.Addr(getU32(b[8:12])), Port: getU16(b[12:14])},
		SndNxt:  tcp.Seq(getU32(b[14:18])),
		RcvNxt:  tcp.Seq(getU32(b[18:22])),
	}, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v >> 8)
	b[1] = byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func getU16(b []byte) uint16 {
	return uint16(b[0])<<8 | uint16(b[1])
}
