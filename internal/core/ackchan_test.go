package core

import (
	"testing"
	"testing/quick"

	"hydranet/internal/ipv4"
	"hydranet/internal/tcp"
)

func TestChainMsgRoundTrip(t *testing.T) {
	f := func(svcAddr, clAddr uint32, svcPort, clPort uint16, snd, rcv uint32) bool {
		in := &ChainMsg{
			Service: ServiceID{Addr: ipv4.Addr(svcAddr), Port: svcPort},
			Client:  tcp.Endpoint{Addr: ipv4.Addr(clAddr), Port: clPort},
			SndNxt:  tcp.Seq(snd),
			RcvNxt:  tcp.Seq(rcv),
		}
		out, err := UnmarshalChainMsg(in.Marshal())
		return err == nil && *out == *in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainMsgRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		make([]byte, 10),
		make([]byte, chainMsgLen),   // zero magic
		make([]byte, chainMsgLen+5), // wrong length
	}
	for i, b := range cases {
		if _, err := UnmarshalChainMsg(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Wrong version.
	m := ChainMsg{Service: ServiceID{Addr: 1, Port: 2}}
	b := m.Marshal()
	b[1] = 99
	if _, err := UnmarshalChainMsg(b); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModePrimary.String() != "primary" || ModeBackup.String() != "backup" {
		t.Error("Mode.String wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode renders empty")
	}
}

func TestDetectorParamsDefaults(t *testing.T) {
	p := DetectorParams{}.withDefaults()
	if p.RetransmitThreshold != 4 {
		t.Errorf("default threshold = %d, want 4", p.RetransmitThreshold)
	}
	if p.SuspectCooldown <= 0 {
		t.Error("default cooldown not positive")
	}
	// Explicit values survive.
	p = DetectorParams{RetransmitThreshold: 2}.withDefaults()
	if p.RetransmitThreshold != 2 {
		t.Error("explicit threshold overridden")
	}
}

func TestServiceIDString(t *testing.T) {
	svc := ServiceID{Addr: ipv4.MustParseAddr("192.20.225.20"), Port: 80}
	if got := svc.String(); got != "192.20.225.20:80" {
		t.Errorf("String = %q", got)
	}
}
