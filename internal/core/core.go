// Package core implements the HydraNet-FT fault-tolerant TCP machinery —
// the paper's primary contribution (Section 4). A replica of a TCP service
// is marked primary or backup per replicated port. Replicas are
// daisy-chained along a one-way UDP acknowledgment channel
// S_N → … → S_1 → S_0 (primary):
//
//   - every replica receives each client packet (multicast by the
//     redirector), but only the primary's responses reach the client;
//   - a replica deposits (and thereby acknowledges) byte k of the client
//     stream only after its successor reported depositing past k;
//   - a replica sends byte k of the response stream only after its
//     successor reported sending past k;
//   - the last replica in the chain is free to proceed immediately.
//
// The same gating applies to the SYN and FIN, which occupy sequence space,
// so connection setup and teardown are chain-ordered too. Repeated client
// retransmissions — the signature of a broken flow-control loop — feed a
// low-latency failure estimator that triggers reconfiguration.
package core

import (
	"fmt"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/obs"
	"hydranet/internal/sim"
	"hydranet/internal/tcp"
	"hydranet/internal/udp"
)

// ServiceID identifies a replicated transport-level service access point:
// the virtual-host address and well-known TCP port.
type ServiceID struct {
	Addr ipv4.Addr
	Port uint16
}

// String renders addr:port.
func (s ServiceID) String() string { return fmt.Sprintf("%s:%d", s.Addr, s.Port) }

// Mode is a replica's role for one replicated port.
type Mode int

// Replica roles.
const (
	ModePrimary Mode = iota + 1
	ModeBackup
)

func (m Mode) String() string {
	switch m {
	case ModePrimary:
		return "primary"
	case ModeBackup:
		return "backup"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DetectorParams configure the per-port failure estimator — the
// detector-parameters argument of the paper's setportopt() call.
type DetectorParams struct {
	// RetransmitThreshold is how many client retransmissions on one
	// connection raise a failure suspicion. The paper notes the trade-off:
	// low values detect quickly but risk false positives and interfere
	// with TCP congestion control (triple-duplicate ACKs are normal).
	// Default 4.
	RetransmitThreshold int
	// SuspectCooldown suppresses repeated reports for the same port while
	// a reconfiguration is presumably in progress. Default 2s.
	SuspectCooldown time.Duration
}

func (p DetectorParams) withDefaults() DetectorParams {
	if p.RetransmitThreshold == 0 {
		p.RetransmitThreshold = 4
	}
	if p.SuspectCooldown == 0 {
		p.SuspectCooldown = 2 * time.Second
	}
	return p
}

// pendingConnTTL bounds how long a chain-message-created placeholder for a
// connection whose SYN has not arrived yet is kept before it is discarded.
const pendingConnTTL = time.Minute

// SuspectFunc is notified when the failure estimator on a replicated port
// trips. The replica management daemon forwards the report to the
// redirector.
type SuspectFunc func(svc ServiceID)

// Stats counts manager-level events.
type Stats struct {
	ChainMsgsSent     uint64
	ChainMsgsReceived uint64
	ChainMsgsBad      uint64
	ChainMsgsOrphan   uint64 // for services not replicated here
	Suspicions        uint64
	Promotions        uint64
}

// Manager is the per-host-server ft-TCP engine: it owns the replicated-port
// table and the host's end of the acknowledgment channel.
type Manager struct {
	sched    *sim.Scheduler
	tcpStack *tcp.Stack
	udpStack *udp.Stack
	hostAddr ipv4.Addr // real address, used as acknowledgment-channel source
	ports    map[ServiceID]*ReplicatedPort
	stats    Stats
	suspect  SuspectFunc
	bus      *obs.Bus

	// chainLoss artificially drops outgoing acknowledgment-channel
	// messages with the given probability — an ablation instrument for
	// studying the paper's trade-off of running the channel over
	// unreliable UDP (Section 4.3).
	chainLoss float64
}

// NewManager creates the engine and binds the acknowledgment-channel UDP
// port. hostAddr is the host server's real (non-virtual) address.
func NewManager(tcpStack *tcp.Stack, udpStack *udp.Stack, hostAddr ipv4.Addr) (*Manager, error) {
	m := &Manager{
		sched:    tcpStack.Scheduler(),
		tcpStack: tcpStack,
		udpStack: udpStack,
		hostAddr: hostAddr,
		ports:    make(map[ServiceID]*ReplicatedPort),
	}
	if err := udpStack.Bind(0, AckChannelPort, m.onChainDatagram); err != nil {
		return nil, fmt.Errorf("core: binding acknowledgment channel: %w", err)
	}
	return m, nil
}

// OnSuspect installs the failure-report callback.
func (m *Manager) OnSuspect(fn SuspectFunc) { m.suspect = fn }

// SetBus attaches an observability event bus for chain-channel, suspicion
// and role-change events. A nil bus (the default) disables all emission.
func (m *Manager) SetBus(b *obs.Bus) { m.bus = b }

func (m *Manager) nodeName() string { return m.tcpStack.IP().Node().Name() }

// SetChainLoss makes the manager drop outgoing acknowledgment-channel
// messages with probability p (ablation instrument; default 0).
func (m *Manager) SetChainLoss(p float64) { m.chainLoss = p }

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats { return m.stats }

// HostAddr returns the host server's real address.
func (m *Manager) HostAddr() ipv4.Addr { return m.hostAddr }

// SetPortOpt marks a TCP port replicated with the given role — the paper's
// setportopt(port, mode, detector-parameters) system call. It returns the
// port object used to wire listeners and reconfigure the chain.
func (m *Manager) SetPortOpt(svc ServiceID, mode Mode, det DetectorParams) *ReplicatedPort {
	p := m.ports[svc]
	if p == nil {
		p = &ReplicatedPort{
			mgr:   m,
			svc:   svc,
			conns: make(map[tcp.Endpoint]*ftConn),
		}
		m.ports[svc] = p
	}
	p.mode = mode
	p.det = det.withDefaults()
	return p
}

// Port returns the replicated port state for svc, or nil.
func (m *Manager) Port(svc ServiceID) *ReplicatedPort { return m.ports[svc] }

// ClearPort removes the replicated-port marking (service leaving).
func (m *Manager) ClearPort(svc ServiceID) { delete(m.ports, svc) }

// Reset discards all replicated-port state — what a host server loses when
// it crashes. Statistics survive (they belong to the experiment, not the
// machine).
func (m *Manager) Reset() {
	m.ports = make(map[ServiceID]*ReplicatedPort)
}

// onChainDatagram handles acknowledgment-channel traffic from successors.
func (m *Manager) onChainDatagram(_ udp.Endpoint, _ ipv4.Addr, payload []byte) {
	msg, err := UnmarshalChainMsg(payload)
	if err != nil {
		m.stats.ChainMsgsBad++
		return
	}
	m.stats.ChainMsgsReceived++
	if b := m.bus; b.Enabled(obs.KindChainRecv) {
		b.Publish(obs.Event{
			Kind: obs.KindChainRecv, Node: m.nodeName(),
			Service: msg.Service.String(), Conn: msg.Client.String(),
			Seq: uint64(msg.SndNxt), Ack: uint64(msg.RcvNxt),
		})
	}
	p := m.ports[msg.Service]
	if p == nil {
		m.stats.ChainMsgsOrphan++
		return
	}
	p.onChainMsg(msg)
}

// ReplicatedPort is per-(virtual host, TCP port) replication state on one
// host server.
type ReplicatedPort struct {
	mgr  *Manager
	svc  ServiceID
	mode Mode
	det  DetectorParams

	// upstream is where this replica sends its stripped flow-control
	// information: the server "ahead of it" in the chain (its
	// predecessor). Zero for the primary, which heads the chain.
	upstream udp.Endpoint
	// gated reports whether a successor exists behind this replica. The
	// last replica in the chain (and a primary with no backups) is free to
	// deposit and send immediately.
	gated bool

	conns        map[tcp.Endpoint]*ftConn
	lastSuspect  time.Duration
	hasSuspected bool
}

// ftConn is per-connection chain state.
type ftConn struct {
	port  *ReplicatedPort
	conn  *tcp.Conn // nil until the SYN reaches us
	gated bool      // snapshot of the port's gating at adoption; relax-only

	// Limits reported by our successor. Valid once haveLimits is set;
	// until then a gated replica neither deposits nor sends.
	haveLimits   bool
	depositLimit tcp.Seq // successor's RcvNxt
	sendLimit    tcp.Seq // successor's SndNxt

	retransmits int // client retransmissions since last progress
}

// Service returns the port's service identity.
func (p *ReplicatedPort) Service() ServiceID { return p.svc }

// Mode returns the replica's current role.
func (p *ReplicatedPort) Mode() Mode { return p.mode }

// SetUpstream configures where stripped flow-control information is sent
// (the predecessor host's acknowledgment-channel endpoint). The replica
// management protocol calls this when the chain is built or repaired.
func (p *ReplicatedPort) SetUpstream(host ipv4.Addr) {
	if host == 0 {
		p.upstream = udp.Endpoint{}
		return
	}
	p.upstream = udp.Endpoint{Addr: host, Port: AckChannelPort}
}

// SetGated declares whether a successor replica exists behind this one.
// Ungated replicas (chain tail) deposit and send freely.
//
// Gating is captured per connection when it is adopted and can only be
// relaxed afterwards: a backup that joins mid-stream has no TCP state for
// established connections, so tightening their gate would stall them
// forever (the paper leaves re-commissioning of recovered servers to
// future work). New connections pick up the new setting.
func (p *ReplicatedPort) SetGated(gated bool) {
	p.gated = gated
	if !gated {
		for _, fc := range p.conns {
			fc.gated = false
			if fc.conn != nil {
				fc.conn.Poke()
			}
		}
	}
}

// Promote switches a backup to primary — the fail-over step. Suppression
// stops, retransmission backoff is cleared, and every connection
// immediately repairs the client-visible stream.
func (p *ReplicatedPort) Promote() {
	if p.mode == ModePrimary {
		return
	}
	p.mode = ModePrimary
	p.upstream = udp.Endpoint{}
	p.mgr.stats.Promotions++
	if b := p.mgr.bus; b.Enabled(obs.KindPromotion) {
		b.Publish(obs.Event{
			Kind: obs.KindPromotion, Node: p.mgr.nodeName(),
			Service: p.svc.String(),
			Detail:  fmt.Sprintf("%d conns", len(p.conns)),
		})
	}
	for _, fc := range p.conns {
		if fc.conn == nil {
			continue
		}
		fc.installHooks() // re-evaluate suppression
		fc.conn.ForceRetransmit()
		fc.conn.Poke()
	}
}

// Demote switches a primary back to backup. This happens when management
// messages race (a backup registered before the primary is briefly sole
// member, hence primary) — the authoritative chain then demotes it, and its
// transmissions must be suppressed again.
func (p *ReplicatedPort) Demote() {
	if p.mode == ModeBackup {
		return
	}
	p.mode = ModeBackup
	if b := p.mgr.bus; b.Enabled(obs.KindDemotion) {
		b.Publish(obs.Event{
			Kind: obs.KindDemotion, Node: p.mgr.nodeName(),
			Service: p.svc.String(),
		})
	}
	for _, fc := range p.conns {
		if fc.conn != nil {
			fc.installHooks()
		}
	}
}

// AttachListener wires a TCP listener for this service so every accepted
// connection runs under ft-TCP hooks from the SYN onward.
func (p *ReplicatedPort) AttachListener(l *tcp.Listener) {
	l.SetSetupFunc(func(c *tcp.Conn) {
		p.adopt(c)
	})
}

// adopt begins managing a server-side connection.
func (p *ReplicatedPort) adopt(c *tcp.Conn) {
	client := c.Remote()
	fc := p.conns[client]
	if fc == nil {
		fc = &ftConn{port: p}
		p.conns[client] = fc
	}
	fc.conn = c
	fc.gated = p.gated
	fc.installHooks()
}

// Conns returns the number of connections under management.
func (p *ReplicatedPort) Conns() int { return len(p.conns) }

// onChainMsg folds successor state into the connection's limits.
func (p *ReplicatedPort) onChainMsg(msg *ChainMsg) {
	fc := p.conns[msg.Client]
	if fc == nil {
		// The successor saw the SYN before we did (multicast races are
		// normal); remember the limits for when our SYN arrives. If it
		// never does (the SYN copy was lost, or the connection is already
		// gone), the placeholder expires instead of leaking.
		fc = &ftConn{port: p}
		p.conns[msg.Client] = fc
		client := msg.Client
		p.mgr.sched.After(pendingConnTTL, func() {
			if ghost := p.conns[client]; ghost == fc && ghost.conn == nil {
				delete(p.conns, client)
			}
		})
	}
	if !fc.haveLimits {
		fc.haveLimits = true
		fc.depositLimit = msg.RcvNxt
		fc.sendLimit = msg.SndNxt
	} else {
		fc.depositLimit = tcp.MaxSeq(fc.depositLimit, msg.RcvNxt)
		fc.sendLimit = tcp.MaxSeq(fc.sendLimit, msg.SndNxt)
	}
	if fc.conn != nil {
		fc.conn.Poke()
	}
}

// installHooks wires the ft-TCP extension points for the connection
// according to the replica's current role and chain position.
func (fc *ftConn) installHooks() {
	p := fc.port
	hooks := tcp.ConnHooks{
		OnPeerRetransmit: fc.onClientRetransmit,
		// A replica's own retransmission timeouts are the push-direction
		// failure signal: if the service streams to a silent client, a
		// dead primary never provokes client retransmissions, but the
		// backups' unacknowledged data does time out repeatedly.
		OnRTO:         fc.onClientRetransmit,
		OnDeposit:     fc.onProgress,
		OnAckProgress: func() { fc.retransmits = 0 },
		OnClosed:      func(error) { delete(p.conns, fc.conn.Remote()) },
	}
	hooks.DepositLimit = func() (tcp.Seq, bool) {
		if !fc.gated {
			return 0, false
		}
		if !fc.haveLimits {
			// No word from the successor yet: hold everything. The
			// deposit cursor itself is the safe floor.
			return fc.conn.RcvNxt(), true
		}
		return fc.depositLimit, true
	}
	hooks.SendLimit = func() (tcp.Seq, bool) {
		if !fc.gated {
			return 0, false
		}
		if !fc.haveLimits {
			return fc.conn.SndNxt(), true
		}
		return fc.sendLimit, true
	}
	if p.mode == ModeBackup {
		hooks.SuppressTransmit = func(seg *tcp.Segment) bool {
			fc.forwardChain(seg)
			return true
		}
	} else if p.upstream.Addr != 0 {
		// A primary never suppresses, but if (transitionally) it has an
		// upstream configured it still reports progress.
		hooks.SuppressTransmit = nil
	}
	fc.conn.SetHooks(hooks)
}

// forwardChain strips a suppressed segment to its flow-control fields and
// sends them up the acknowledgment channel.
func (fc *ftConn) forwardChain(seg *tcp.Segment) {
	// The segment's SEQ plus its occupancy is this replica's send cursor
	// after the packet; its ACK field is the deposit cursor.
	fc.sendChainMsg(seg.Seq.Add(seg.Len()), seg.Ack)
}

// forwardCursors sends the connection's current flow-control cursors up the
// chain. The paper: "Once Si has deposited the data in the socket buffer,
// it forwards the flow control information along the acknowledgement
// channel" — deposits propagate immediately rather than waiting for the
// next (possibly delayed-ACK-batched) would-be packet.
func (fc *ftConn) forwardCursors() {
	fc.sendChainMsg(fc.conn.SndNxt(), fc.conn.RcvNxt())
}

func (fc *ftConn) sendChainMsg(sndNxt, rcvNxt tcp.Seq) {
	p := fc.port
	if p.upstream.Addr == 0 {
		return
	}
	msg := ChainMsg{
		Service: p.svc,
		Client:  fc.conn.Remote(),
		SndNxt:  sndNxt,
		RcvNxt:  rcvNxt,
	}
	if p.mgr.chainLoss > 0 && p.mgr.sched.Rand().Float64() < p.mgr.chainLoss {
		return // ablation: lost acknowledgment-channel message
	}
	p.mgr.stats.ChainMsgsSent++
	if b := p.mgr.bus; b.Enabled(obs.KindChainSend) {
		b.Publish(obs.Event{
			Kind: obs.KindChainSend, Node: p.mgr.nodeName(),
			Service: p.svc.String(), Conn: msg.Client.String(),
			Seq: uint64(sndNxt), Ack: uint64(rcvNxt),
		})
	}
	// Send errors mean no route to the predecessor — the chain is broken
	// and reconfiguration will handle it; nothing to do here.
	_ = p.mgr.udpStack.SendTo(p.mgr.hostAddr, AckChannelPort, p.upstream, msg.Marshal()) //nolint:errcheck
}

// onClientRetransmit is the failure-estimator input (paper Section 4.3):
// repeated client retransmissions mean the flow-control loop is broken
// somewhere in the replica set.
func (fc *ftConn) onClientRetransmit() {
	p := fc.port
	fc.retransmits++
	if fc.retransmits < p.det.RetransmitThreshold {
		return
	}
	now := p.mgr.sched.Now()
	if p.hasSuspected && now-p.lastSuspect < p.det.SuspectCooldown {
		return
	}
	p.hasSuspected = true
	p.lastSuspect = now
	fc.retransmits = 0
	p.mgr.stats.Suspicions++
	if b := p.mgr.bus; b.Enabled(obs.KindSuspicion) {
		b.Publish(obs.Event{
			Kind: obs.KindSuspicion, Node: p.mgr.nodeName(),
			Service: p.svc.String(),
			Detail:  fmt.Sprintf("after %d retransmissions", p.det.RetransmitThreshold),
		})
	}
	if p.mgr.suspect != nil {
		p.mgr.suspect(p.svc)
	}
}

// onProgress runs after every deposit: it resets the failure estimator
// (data is flowing) and immediately forwards the new cursors up the chain.
func (fc *ftConn) onProgress() {
	fc.retransmits = 0
	fc.forwardCursors()
}
