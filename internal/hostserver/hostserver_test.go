package hostserver

import (
	"testing"
	"time"

	"hydranet/internal/ipv4"
	"hydranet/internal/netsim"
	"hydranet/internal/sim"
)

type sink struct{ pkts []*ipv4.Packet }

func (s *sink) DeliverIP(p *ipv4.Packet) { s.pkts = append(s.pkts, p) }

// rig: sender — hostserver, directly linked.
func rig(t *testing.T) (*sim.Scheduler, *ipv4.Stack, *HostServer, ipv4.Addr) {
	t.Helper()
	sched := sim.NewScheduler(31)
	nw := netsim.New(sched)
	a := nw.AddNode(netsim.NodeConfig{Name: "sender"})
	b := nw.AddNode(netsim.NodeConfig{Name: "hs"})
	nw.Connect(a, b, netsim.LinkConfig{Delay: time.Millisecond})
	sa := ipv4.NewStack(a, sched)
	sb := ipv4.NewStack(b, sched)
	sa.SetAddr(0, ipv4.MustParseAddr("10.0.0.1"))
	hsAddr := ipv4.MustParseAddr("10.0.0.2")
	sb.SetAddr(0, hsAddr)
	sa.Routes().AddDefault(0)
	sb.Routes().AddDefault(0)
	return sched, sa, New(sb), hsAddr
}

// tunnel builds an IP-in-IP frame around inner and sends it to the host
// server.
func tunnel(t *testing.T, sa *ipv4.Stack, hs ipv4.Addr, inner *ipv4.Packet) {
	t.Helper()
	body, err := inner.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Send(ipv4.ProtoIPIP, 0, hs, body); err != nil {
		t.Fatal(err)
	}
}

func TestVHostLifecycle(t *testing.T) {
	_, _, hs, _ := rig(t)
	vhost := ipv4.MustParseAddr("192.20.225.20")
	if hs.HasVHost(vhost) {
		t.Fatal("fresh host server has a vhost")
	}
	hs.VHost(vhost)
	hs.VHost(vhost) // second service on the same virtual host
	if !hs.HasVHost(vhost) || !hs.IP().IsLocal(vhost) {
		t.Fatal("vhost not installed")
	}
	hs.ReleaseVHost(vhost)
	if !hs.HasVHost(vhost) {
		t.Fatal("refcounted vhost removed too early")
	}
	hs.ReleaseVHost(vhost)
	if hs.HasVHost(vhost) || hs.IP().IsLocal(vhost) {
		t.Fatal("vhost not removed after last release")
	}
	hs.ReleaseVHost(vhost) // extra release must be a no-op
	if len(hs.VHosts()) != 0 {
		t.Fatal("VHosts not empty")
	}
}

func TestTunnelDecapToVHost(t *testing.T) {
	sched, sa, hs, hsAddr := rig(t)
	vhost := ipv4.MustParseAddr("192.20.225.20")
	hs.VHost(vhost)
	recv := &sink{}
	hs.IP().RegisterProto(ipv4.ProtoUDP, recv)

	inner := &ipv4.Packet{
		Header:  ipv4.Header{TTL: 60, Proto: ipv4.ProtoUDP, Src: ipv4.MustParseAddr("1.2.3.4"), Dst: vhost, ID: 9},
		Payload: []byte("tunneled payload"),
	}
	tunnel(t, sa, hsAddr, inner)
	sched.Run()
	if len(recv.pkts) != 1 {
		t.Fatalf("delivered %d inner packets, want 1", len(recv.pkts))
	}
	got := recv.pkts[0]
	if got.Dst != vhost || got.Src != ipv4.MustParseAddr("1.2.3.4") {
		t.Errorf("inner header corrupted: src=%s dst=%s", got.Src, got.Dst)
	}
	if string(got.Payload) != "tunneled payload" {
		t.Errorf("payload %q", got.Payload)
	}
	if d, _, _ := hs.Stats(); d != 1 {
		t.Errorf("decapsulated = %d, want 1", d)
	}
}

func TestTunnelForUnknownVHostDropped(t *testing.T) {
	sched, sa, hs, hsAddr := rig(t)
	recv := &sink{}
	hs.IP().RegisterProto(ipv4.ProtoUDP, recv)
	inner := &ipv4.Packet{
		Header:  ipv4.Header{TTL: 60, Proto: ipv4.ProtoUDP, Src: 1, Dst: ipv4.MustParseAddr("9.9.9.9"), ID: 1},
		Payload: []byte("nope"),
	}
	tunnel(t, sa, hsAddr, inner)
	sched.Run()
	if len(recv.pkts) != 0 {
		t.Fatal("packet for unknown virtual host delivered")
	}
	if _, _, nv := hs.Stats(); nv != 1 {
		t.Errorf("notVirtual = %d, want 1", nv)
	}
}

func TestMalformedTunnelDropped(t *testing.T) {
	sched, sa, hs, hsAddr := rig(t)
	if err := sa.Send(ipv4.ProtoIPIP, 0, hsAddr, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if _, bad, _ := hs.Stats(); bad != 1 {
		t.Errorf("badTunnel = %d, want 1", bad)
	}
}

func TestOwnAddressSurvivesVHostRelease(t *testing.T) {
	// A replica may run on the service's origin host (paper Figure 1):
	// installing and releasing a virtual host for the machine's own
	// interface address must not withdraw that address.
	_, _, hs, hsAddr := rig(t)
	hs.VHost(hsAddr)
	hs.ReleaseVHost(hsAddr)
	if !hs.IP().IsLocal(hsAddr) {
		t.Fatal("vhost release withdrew the host's own interface address")
	}
}
