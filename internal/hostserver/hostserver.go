// Package hostserver implements HydraNet host servers: hosts that are
// "servers-of-servers" (paper Section 3). A host server can host virtual
// hosts — service replicas reachable under the IP address of their origin
// host — and decapsulates IP-in-IP traffic tunneled to it by redirectors.
package hostserver

import (
	"fmt"

	"hydranet/internal/ipv4"
)

// HostServer decorates a node's IP stack with virtual-host management and
// tunnel decapsulation.
type HostServer struct {
	ip     *ipv4.Stack
	vhosts map[ipv4.Addr]int // reference counts per virtual host address

	// Stats
	decapsulated uint64
	badTunnel    uint64
	notVirtual   uint64
}

var _ ipv4.ProtocolHandler = (*HostServer)(nil)

// New equips the given IP stack as a HydraNet host server. It registers
// itself as the IP-in-IP (protocol 4) handler.
func New(ip *ipv4.Stack) *HostServer {
	h := &HostServer{ip: ip, vhosts: make(map[ipv4.Addr]int)}
	ip.RegisterProto(ipv4.ProtoIPIP, h)
	return h
}

// IP returns the underlying IP stack.
func (h *HostServer) IP() *ipv4.Stack { return h.ip }

// VHost associates a virtual host with this host server — the equivalent of
// the paper's v_host(ip_address) system call. Packets for addr delivered
// here (by tunnel) reach local sockets. Multiple services may share a
// virtual host; calls are reference-counted.
func (h *HostServer) VHost(addr ipv4.Addr) {
	h.vhosts[addr]++
	h.ip.AddLocalAddr(addr)
}

// ReleaseVHost drops one reference to a virtual host, withdrawing the
// address when the last reference goes.
func (h *HostServer) ReleaseVHost(addr ipv4.Addr) {
	if h.vhosts[addr] == 0 {
		return
	}
	h.vhosts[addr]--
	if h.vhosts[addr] == 0 {
		delete(h.vhosts, addr)
		// A replica may run on the service's origin host, where the
		// "virtual" host is the machine's own interface address — never
		// withdraw that.
		if !h.ip.IsInterfaceAddr(addr) {
			h.ip.RemoveLocalAddr(addr)
		}
	}
}

// HasVHost reports whether addr is currently hosted here.
func (h *HostServer) HasVHost(addr ipv4.Addr) bool { return h.vhosts[addr] > 0 }

// VHosts returns the hosted virtual-host addresses.
func (h *HostServer) VHosts() []ipv4.Addr {
	out := make([]ipv4.Addr, 0, len(h.vhosts))
	for a := range h.vhosts {
		out = append(out, a)
	}
	return out
}

// Stats returns decapsulated, malformed-tunnel and non-virtual-host drops.
func (h *HostServer) Stats() (decapsulated, badTunnel, notVirtual uint64) {
	return h.decapsulated, h.badTunnel, h.notVirtual
}

// DeliverIP implements ipv4.ProtocolHandler for protocol 4 (IP-in-IP): it
// unwraps the inner datagram and, if it targets a hosted virtual host,
// injects it into local delivery.
func (h *HostServer) DeliverIP(outer *ipv4.Packet) {
	inner, err := ipv4.Unmarshal(outer.Payload)
	if err != nil {
		h.badTunnel++
		return
	}
	if !h.ip.IsLocal(inner.Dst) {
		h.notVirtual++
		return
	}
	h.decapsulated++
	h.ip.InjectLocal(inner)
}

// String describes the host server for traces.
func (h *HostServer) String() string {
	return fmt.Sprintf("hostserver(%s, %d vhosts)", h.ip.Node().Name(), len(h.vhosts))
}
