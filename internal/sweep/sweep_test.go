package sweep

import (
	"runtime"
	"testing"
)

func TestMapOrder(t *testing.T) {
	got := Map(4, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSerialEqualsParallel(t *testing.T) {
	f := func(i int) int { return i*7 + 3 }
	serial := Map(1, 50, f)
	parallel := Map(runtime.GOMAXPROCS(0), 50, f)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	if got := Map(0, 3, func(i int) int { return i }); len(got) != 3 {
		t.Fatalf("workers=0 returned %d results", len(got))
	}
	if got := Map(16, 2, func(i int) int { return i }); len(got) != 2 || got[1] != 1 {
		t.Fatalf("workers>n returned %v", got)
	}
}
