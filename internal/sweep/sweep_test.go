package sweep

import (
	"runtime"
	"testing"
)

func TestMapOrder(t *testing.T) {
	got := Map(4, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSerialEqualsParallel(t *testing.T) {
	f := func(i int) int { return i*7 + 3 }
	serial := Map(1, 50, f)
	parallel := Map(runtime.GOMAXPROCS(0), 50, f)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	if got := Map(0, 3, func(i int) int { return i }); len(got) != 3 {
		t.Fatalf("workers=0 returned %d results", len(got))
	}
	if got := Map(16, 2, func(i int) int { return i }); len(got) != 2 || got[1] != 1 {
		t.Fatalf("workers>n returned %v", got)
	}
}

func TestBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	// Serial runs: the requested fan-out passes through untouched.
	if got := Budget(7, 1); got != 7 {
		t.Fatalf("Budget(7, 1) = %d, want 7", got)
	}
	if got := Budget(0, 0); got != procs {
		t.Fatalf("Budget(0, 0) = %d, want GOMAXPROCS (%d)", got, procs)
	}
	// Internally-parallel runs: parallel × perRun stays within GOMAXPROCS.
	if got := Budget(procs, 2); got > 1 && got*2 > procs {
		t.Fatalf("Budget(%d, 2) = %d oversubscribes %d cores", procs, got, procs)
	}
	// Never below one run, even when a single run wants every core.
	if got := Budget(procs, 2*procs); got != 1 {
		t.Fatalf("Budget(%d, %d) = %d, want 1", procs, 2*procs, got)
	}
	// Requests below the cap are honored exactly.
	if got := Budget(1, 1<<20); got != 1 {
		t.Fatalf("Budget(1, big) = %d, want 1", got)
	}
}
