// Package sweep fans independent simulation runs across OS threads.
//
// Every testbed run owns a private scheduler, network and frame pool, so a
// parameter sweep (seeds × configurations) is embarrassingly parallel: jobs
// share nothing but the result slice, each slot of which is written by
// exactly one worker. Determinism is unaffected — parallelism changes only
// which host thread executes a run, never the order of events inside it.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for every i in [0, n) across min(workers, n) goroutines
// and returns the results in index order. workers <= 0 selects GOMAXPROCS.
// fn must be self-contained: anything it touches besides its own result
// slot must be read-only or thread-local.
func Map[T any](workers, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Budget caps a sweep's fan-out when each run is itself internally parallel:
// with perRun worker threads inside every simulation (domain-partitioned
// runs, see hydranet.SetWorkers), running `parallel` simulations at once
// would put parallel × perRun threads on GOMAXPROCS cores — oversubscription
// that slows every run without changing any result. Budget returns the
// largest concurrent-run count not exceeding the requested parallel that
// keeps the product within GOMAXPROCS, and at least 1. perRun <= 1 (serial
// runs) leaves the requested fan-out untouched.
func Budget(parallel, perRun int) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if perRun <= 1 {
		return parallel
	}
	if cap := runtime.GOMAXPROCS(0) / perRun; parallel > cap {
		parallel = cap
	}
	if parallel < 1 {
		return 1
	}
	return parallel
}
