// Package invariant is the online runtime-verification monitor of the
// HydraNet-FT reproduction: a bus subscriber that continuously checks the
// paper's safety properties — the protocol obligations behind "network
// support for dependable services" — instead of merely counting events.
//
// The monitor consumes the same typed obs event stream every other
// observer does. Under the parallel core that stream is replayed at window
// barriers in exactly the serial order (DESIGN.md §10), so verdicts and
// violation ordering are byte-identical for every worker count. Like every
// observer in this tree it is free when detached — emit sites stay behind
// Bus.Enabled — and its per-event hot path is allocation-free in steady
// state (first contact with a connection or node allocates its tracking
// slot, every later event lands in existing storage; the zeroalloc lint
// fences the path, an allocs/event test pins it).
//
// Checked rules (see DESIGN.md §12 for the paper clause each encodes):
//
//   - deposit-cursor: per (node, service, conn) the deposit cursor advances
//     by exactly the bytes deposited — no byte reaches the application
//     twice, none is skipped (exactly-once, in-order delivery).
//   - ack-monotonic: per (node, service, conn) the cumulative ACK point
//     never regresses.
//   - ft-gate: a client-facing ACK for a replicated service never exceeds
//     the minimum deposit cursor over the live replica set, outside a
//     reconfiguration window (the ft-TCP gating invariant, paper §4.2).
//   - chain-monotonic: the acknowledgment channel's deposit cursor
//     (RcvNxt) is non-decreasing within a membership epoch.
//   - membership: exactly one live primary per replica set between
//     reconfigurations.
//   - client-delivery: a client application never consumes more bytes than
//     its own stack deposited (exactly-once at the delivery surface).
//   - frame-conservation: at quiesce no pooled frame remains outstanding —
//     every frame sent was delivered, dropped with a recorded reason, or
//     released.
//
// On violation the monitor records a forensic Violation (rule, virtual
// instant, offending node/connection, the triggering event, expected and
// observed cursors) and fires OnViolation hooks — the flight recorder
// hooks these to dump its frame and event rings, preserving the
// surrounding pcap window.
package invariant

import (
	"strings"

	"hydranet/internal/obs"
)

// Rule names, in report order.
const (
	RuleDeposit      = "deposit-cursor"
	RuleAck          = "ack-monotonic"
	RuleGate         = "ft-gate"
	RuleChain        = "chain-monotonic"
	RuleMembership   = "membership"
	RuleDelivery     = "client-delivery"
	RuleConservation = "frame-conservation"
)

// Rule indices into the per-rule counter arrays.
const (
	ruleDeposit = iota
	ruleAck
	ruleGate
	ruleChain
	ruleMembership
	ruleDelivery
	ruleConservation
	numRules
)

// ruleNames maps rule index to name, in report order.
var ruleNames = [numRules]string{
	RuleDeposit, RuleAck, RuleGate, RuleChain,
	RuleMembership, RuleDelivery, RuleConservation,
}

// DefaultMaxViolations bounds how many violations are recorded with full
// forensic detail; later ones are still counted per rule. A sick run can
// violate on every segment, and an unbounded record would turn the monitor
// into the memory leak it audits for.
const DefaultMaxViolations = 256

// Config parameterizes a Monitor.
type Config struct {
	// Scenario labels the audit report (free-form; keep it free of
	// worker counts and wall-clock facts so reports diff byte-identical
	// across -workers).
	Scenario string
	// Outstanding, if set, reports the frame pool's outstanding count for
	// the quiesce conservation check (normally netsim.Network.PoolOutstanding
	// via the facade).
	Outstanding func() int
	// MaxViolations bounds recorded violations (<= 0 selects
	// DefaultMaxViolations).
	MaxViolations int
}

// connKey identifies one directed connection endpoint at one node.
type connKey struct {
	node string
	a    string // local endpoint as emitted (Event.Service)
	b    string // remote endpoint as emitted (Event.Conn)
}

// flowKey identifies one client flow of one service, node-independent: the
// join key between a replica's deposit events (Service=service endpoint,
// Conn=client endpoint) and the client's ACK events (Service=client
// endpoint, Conn=service endpoint).
type flowKey struct {
	svc    string
	client string
}

// replicaCursor is one node's deposit cursor on one flow.
type replicaCursor struct {
	cursor uint32
	seen   bool
	// live distinguishes a cursor that tracks a running stack from the
	// stale cursor of a crashed or restarted node: stale cursors leave the
	// gating minimum and the continuity baseline until the node deposits
	// again.
	live bool
}

// flowState tracks every replica's deposit cursor on one client flow.
type flowState struct {
	deps map[string]*replicaCursor
}

// ackState is one connection's cumulative-ACK baseline.
type ackState struct {
	ack  uint32
	seen bool
	live bool
}

// chainState is one node's acknowledgment-channel deposit-cursor baseline
// for one (service, client) flow, per direction. Only the RcvNxt (deposit
// cursor) is tracked: chain messages echo the send cursor of the specific
// segment that triggered them, so a retransmission legitimately carries a
// lower SndNxt — but the deposit cursor, the quantity that gates
// client-facing ACKs, must never regress within a membership epoch.
type chainState struct {
	sndAck  uint32 // last chain-send RcvNxt
	rcvAck  uint32 // last chain-recv RcvNxt
	sndSeen bool
	rcvSeen bool
}

// svcState is one replicated service's membership view, reconstructed from
// registration, reconfiguration, promotion, demotion and recommission
// events.
type svcState struct {
	members map[string]bool // node name -> chain member
	primary string          // node name of the current primary ("" if none)
	// window is true while a reconfiguration is in progress (a member
	// crashed, or the primary was removed and its successor has not
	// promoted yet); the gate and membership rules are suspended inside
	// it, exactly as the paper's guarantees are.
	window bool
}

// nodeState is one node's liveness and conservation totals.
type nodeState struct {
	crashed   bool
	deposited uint64 // bytes the stack handed to applications on this node
	delivered uint64 // bytes client harnesses reported consuming
}

// Monitor is the online invariant checker. Create with New, wire with
// Attach, read verdicts with Finish. Not safe for concurrent use: like
// every bus subscriber it runs synchronously on the (virtual-time ordered)
// event stream.
type Monitor struct {
	scenario    string
	outstanding func() int
	maxRecorded int

	addrName map[string]string // "10.2.0.1" -> "s0", for management events

	flows  map[flowKey]*flowState
	acks   map[connKey]*ackState
	chains map[connKey]*chainState
	svcs   map[string]*svcState
	nodes  map[string]*nodeState

	events     uint64
	frames     uint64
	frameBytes uint64
	kindCounts []uint64

	checks     [numRules]uint64
	failures   [numRules]uint64
	violations []Violation
	onViolate  []func(Violation)

	quiesceChecked bool
	outstandingEnd int
}

// New creates a monitor. Attach it to a bus before the traffic (and the
// service registrations) it should audit.
func New(cfg Config) *Monitor {
	maxRec := cfg.MaxViolations
	if maxRec <= 0 {
		maxRec = DefaultMaxViolations
	}
	return &Monitor{
		scenario:    cfg.Scenario,
		outstanding: cfg.Outstanding,
		maxRecorded: maxRec,
		addrName:    make(map[string]string),
		flows:       make(map[flowKey]*flowState),
		acks:        make(map[connKey]*ackState),
		chains:      make(map[connKey]*chainState),
		svcs:        make(map[string]*svcState),
		nodes:       make(map[string]*nodeState),
		kindCounts:  make([]uint64, len(obs.Kinds())),
	}
}

// MapAddr teaches the monitor a host address → node name binding, so
// membership events (which carry addresses) join with stack events (which
// carry node names). The facade registers every host at attach time.
func (m *Monitor) MapAddr(addr, name string) { m.addrName[addr] = name }

// Attach subscribes the monitor to the bus: the cursor rules on the hot
// kinds, the membership machine and event census on everything else.
func (m *Monitor) Attach(b *obs.Bus) {
	b.Subscribe(m.observeHot,
		obs.KindDeposit, obs.KindAckProgress,
		obs.KindChainSend, obs.KindChainRecv, obs.KindClientDeliver)
	var rest []obs.Kind
	for _, k := range obs.Kinds() {
		switch k {
		case obs.KindDeposit, obs.KindAckProgress,
			obs.KindChainSend, obs.KindChainRecv, obs.KindClientDeliver:
		default:
			rest = append(rest, k)
		}
	}
	b.Subscribe(m.observeSlow, rest...)
}

// OnViolation registers fn to run synchronously, at the violating event's
// virtual time, for every recorded violation. Flight recorders hook this
// to dump their rings while the surrounding frames are still in them.
func (m *Monitor) OnViolation(fn func(Violation)) {
	m.onViolate = append(m.onViolate, fn)
}

// NoteFrame counts one fabric frame for the audit census. The facade
// routes a frame tap here; under the parallel core the tap is replayed at
// barriers in serial order like every other observation.
//
//hydralint:zeroalloc
func (m *Monitor) NoteFrame(size int) {
	m.frames++
	m.frameBytes += uint64(size)
}

// seqLT reports a < b in mod-2^32 serial-number arithmetic (RFC 1982 as
// TCP applies it).
//
//hydralint:zeroalloc
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// node returns n's state, allocating it on first contact.
//
//hydralint:zeroalloc
func (m *Monitor) node(name string) *nodeState {
	ns := m.nodes[name]
	if ns == nil {
		ns = &nodeState{}
		m.nodes[name] = ns
	}
	return ns
}

// alive reports whether the node is not known to be crashed (nodes the
// monitor never heard about are presumed alive).
//
//hydralint:zeroalloc
func (m *Monitor) alive(name string) bool {
	ns := m.nodes[name]
	return ns == nil || !ns.crashed
}

// observeHot is the per-event hot path: the cursor rules, evaluated on
// every deposit, ACK advance, chain message and client delivery while the
// monitor is attached. Steady state must stay allocation-free — only first
// contact with a connection or node may allocate its slot, and violation
// details are structured constants rendered lazily.
//
//hydralint:zeroalloc
func (m *Monitor) observeHot(e obs.Event) {
	m.events++
	if int(e.Kind) < len(m.kindCounts) {
		m.kindCounts[e.Kind]++
	}
	switch e.Kind {
	case obs.KindDeposit:
		m.noteDeposit(e)
	case obs.KindAckProgress:
		m.noteAck(e)
	case obs.KindChainSend:
		m.noteChain(e, true)
	case obs.KindChainRecv:
		m.noteChain(e, false)
	case obs.KindClientDeliver:
		m.noteDeliver(e)

	default:
		// The hot path owns only the cursor rules; membership kinds take
		// the slow path and the rest carry no monitored state.
	}
}

// noteDeposit checks deposit-cursor continuity: the post-deposit cursor
// must equal the previous cursor plus the bytes deposited. A short advance
// means bytes reached the application twice; a long one means bytes were
// skipped. Either way exactly-once delivery is broken.
//
//hydralint:zeroalloc
func (m *Monitor) noteDeposit(e obs.Event) {
	fk := flowKey{svc: e.Service, client: e.Conn}
	f := m.flows[fk]
	if f == nil {
		f = &flowState{deps: make(map[string]*replicaCursor)}
		m.flows[fk] = f
	}
	rc := f.deps[e.Node]
	if rc == nil {
		rc = &replicaCursor{}
		f.deps[e.Node] = rc
	}
	m.checks[ruleDeposit]++
	seq := uint32(e.Seq)
	if rc.seen && rc.live {
		want := rc.cursor + uint32(e.Size)
		if seq != want {
			if seqLT(seq, want) {
				m.record(ruleDeposit, e, "deposit cursor advanced less than the bytes deposited: duplicate delivery to the application", uint64(want), uint64(seq))
			} else {
				m.record(ruleDeposit, e, "deposit cursor advanced more than the bytes deposited: bytes skipped past the application", uint64(want), uint64(seq))
			}
		}
	}
	rc.cursor = seq
	rc.seen = true
	rc.live = true
	m.node(e.Node).deposited += uint64(e.Size)
}

// noteAck checks cumulative-ACK monotonicity and, for the client side of a
// replicated service, the ft-TCP gating invariant: the ACK the client
// observed must not exceed the minimum deposit cursor over the live
// replica set (+1 for the FIN, which consumes a sequence number but is
// never deposited).
//
//hydralint:zeroalloc
func (m *Monitor) noteAck(e obs.Event) {
	ck := connKey{node: e.Node, a: e.Service, b: e.Conn}
	st := m.acks[ck]
	if st == nil {
		st = &ackState{}
		m.acks[ck] = st
	}
	m.checks[ruleAck]++
	seq := uint32(e.Seq)
	if st.seen && st.live && seqLT(seq, st.ack) {
		m.record(ruleAck, e, "cumulative ACK point regressed", uint64(st.ack), uint64(seq))
	}
	st.ack = seq
	st.seen = true
	st.live = true

	// Gate check: e.Conn is the remote endpoint; when it names a replicated
	// service and the emitting node is not a chain member, this is the
	// client observing the primary's ACK.
	s := m.svcs[e.Conn]
	if s == nil || s.members[e.Node] || s.window {
		return
	}
	f := m.flows[flowKey{svc: e.Conn, client: e.Service}]
	if f == nil {
		return
	}
	var minCur uint32
	var minNode string
	complete := true
	found := false
	for node := range s.members { //hydralint:nondeterministic min over live members is order-independent; ties broken by name below
		if !m.alive(node) {
			continue
		}
		rc := f.deps[node]
		if rc == nil || !rc.seen || !rc.live {
			// A live member has not deposited on this flow (connection
			// setup, or a recommissioned host that never saw it): the
			// bound is not evaluable yet.
			complete = false
			break
		}
		if !found || seqLT(rc.cursor, minCur) || (rc.cursor == minCur && node < minNode) {
			minCur = rc.cursor
			minNode = node
			found = true
		}
	}
	if !complete || !found {
		return
	}
	m.checks[ruleGate]++
	limit := minCur + 1 // the FIN consumes one un-deposited sequence number
	if seqLT(limit, seq) {
		v := m.record(ruleGate, e, "client-facing ACK beyond the minimum replica deposit cursor", uint64(limit), uint64(seq))
		if v != nil {
			v.Node = minNode // the replica holding the violated bound
		}
	}
}

// noteChain checks acknowledgment-channel deposit-cursor sanity: within
// one membership epoch a replica's chain RcvNxt never regresses. (SndNxt
// is not checked — chain messages echo the send cursor of the triggering
// segment, so retransmissions legitimately carry lower values.) Baselines
// reset at reconfigurations (the upstream neighbor changes) and at crashes
// (volatile state is legitimately lost).
//
//hydralint:zeroalloc
func (m *Monitor) noteChain(e obs.Event, send bool) {
	ck := connKey{node: e.Node, a: e.Service, b: e.Conn}
	st := m.chains[ck]
	if st == nil {
		st = &chainState{}
		m.chains[ck] = st
	}
	m.checks[ruleChain]++
	ack := uint32(e.Ack)
	if send {
		if st.sndSeen && seqLT(ack, st.sndAck) {
			m.record(ruleChain, e, "chain-send deposit cursor (RcvNxt) regressed", uint64(st.sndAck), uint64(ack))
		}
		st.sndAck, st.sndSeen = ack, true
		return
	}
	if st.rcvSeen && seqLT(ack, st.rcvAck) {
		m.record(ruleChain, e, "chain-recv deposit cursor (RcvNxt) regressed", uint64(st.rcvAck), uint64(ack))
	}
	st.rcvAck, st.rcvSeen = ack, true
}

// noteDeliver checks delivery conservation: a client harness can never
// have consumed more bytes than its own stack deposited.
//
//hydralint:zeroalloc
func (m *Monitor) noteDeliver(e obs.Event) {
	ns := m.node(e.Node)
	m.checks[ruleDelivery]++
	ns.delivered += uint64(e.Size)
	if ns.delivered > ns.deposited {
		m.record(ruleDelivery, e, "client consumed more bytes than its stack deposited", ns.deposited, ns.delivered)
	}
}

// record counts a violation and, within the forensic bound, stores it and
// fires the OnViolation hooks at the violating event's virtual time. It
// returns the stored record for caller annotation (nil when beyond the
// bound). detail must be a constant: the hot path renders nothing.
//
//hydralint:zeroalloc
func (m *Monitor) record(rule int, e obs.Event, detail string, want, got uint64) *Violation {
	m.failures[rule]++
	if len(m.violations) >= m.maxRecorded {
		return nil
	}
	m.violations = append(m.violations, Violation{
		Rule:    ruleNames[rule],
		Time:    e.Time,
		Node:    e.Node,
		Service: e.Service,
		Conn:    e.Conn,
		Detail:  detail,
		Want:    want,
		Got:     got,
		Event:   e,
	})
	v := &m.violations[len(m.violations)-1]
	for _, fn := range m.onViolate {
		fn(*v)
	}
	return v
}

// observeSlow handles the management plane and the event census: rare
// kinds, allowed to parse and allocate.
func (m *Monitor) observeSlow(e obs.Event) {
	m.events++
	if int(e.Kind) < len(m.kindCounts) {
		m.kindCounts[e.Kind]++
	}
	switch e.Kind {
	case obs.KindNodeCrash:
		m.noteCrash(e)
	case obs.KindNodeRestart:
		m.node(e.Node).crashed = false
	case obs.KindRegistration:
		m.noteRegistration(e)
	case obs.KindReconfig:
		m.noteReconfig(e)
	case obs.KindPromotion:
		m.notePromotion(e)
	case obs.KindDemotion:
		m.noteDemotion(e)
	case obs.KindRecommission:
		m.noteRecommission(e)

	default:
		// Membership bookkeeping only; data-path kinds were already
		// dispatched by observeHot.
	}
}

// svc returns the service's membership state, allocating on first sight.
func (m *Monitor) svc(key string) *svcState {
	s := m.svcs[key]
	if s == nil {
		s = &svcState{members: make(map[string]bool)}
		m.svcs[key] = s
	}
	return s
}

// resolveAddr maps a host address to its node name (falling back to the
// address itself when the facade never registered it).
func (m *Monitor) resolveAddr(addr string) string {
	if name, ok := m.addrName[addr]; ok {
		return name
	}
	return addr
}

// noteCrash marks the node dead, invalidates its volatile cursors (the
// state is legitimately lost with the machine), and opens a
// reconfiguration window on every service it was a member of.
func (m *Monitor) noteCrash(e obs.Event) {
	m.node(e.Node).crashed = true
	for _, f := range m.flows { //hydralint:nondeterministic per-flow invalidation of one node commutes across flows
		if rc := f.deps[e.Node]; rc != nil {
			rc.live = false
		}
	}
	for k, st := range m.acks { //hydralint:nondeterministic per-conn invalidation of one node commutes across conns
		if k.node == e.Node {
			st.live = false
		}
	}
	for k, st := range m.chains { //hydralint:nondeterministic per-conn baseline reset of one node commutes across conns
		if k.node == e.Node {
			st.sndSeen = false
			st.rcvSeen = false
		}
	}
	for _, s := range m.svcs { //hydralint:nondeterministic window flag update commutes across services
		if s.members[e.Node] {
			s.window = true
		}
	}
}

// noteRegistration folds "ADDR as MODE" into the membership view. A
// primary registration while another live primary holds the role outside
// a reconfiguration window is a membership violation.
func (m *Monitor) noteRegistration(e obs.Event) {
	fields := strings.Fields(e.Detail)
	if len(fields) < 3 || fields[1] != "as" {
		return
	}
	name := m.resolveAddr(fields[0])
	s := m.svc(e.Service)
	s.members[name] = true
	m.checks[ruleMembership]++
	if fields[2] == "primary" {
		if s.primary != "" && s.primary != name && m.alive(s.primary) && !s.window {
			m.record(ruleMembership, e, "primary registration while another primary is live", 0, 0)
		}
		s.primary = name
	}
}

// noteReconfig removes the re-chained-away hosts from the membership view.
// The Detail is "cause [addr addr ...]"; removing the primary keeps the
// reconfiguration window open until its successor promotes, removing only
// backups closes it. Chain cursor baselines for the service reset: the
// upstream neighbors changed.
func (m *Monitor) noteReconfig(e obs.Event) {
	s := m.svc(e.Service)
	m.checks[ruleMembership]++
	open, close := strings.IndexByte(e.Detail, '['), strings.IndexByte(e.Detail, ']')
	if open >= 0 && close > open {
		for _, addr := range strings.Fields(e.Detail[open+1 : close]) {
			name := m.resolveAddr(addr)
			delete(s.members, name)
			if s.primary == name {
				s.primary = ""
			}
		}
	}
	s.window = s.primary == ""
	for k, st := range m.chains { //hydralint:nondeterministic per-conn baseline reset commutes across conns
		if k.a == e.Service {
			st.sndSeen = false
			st.rcvSeen = false
		}
	}
}

// notePromotion closes the service's reconfiguration window with the new
// primary. A promotion while another live primary holds the role outside a
// window means two primaries ACK the same client — the split-brain the
// chain protocol exists to prevent.
func (m *Monitor) notePromotion(e obs.Event) {
	s := m.svc(e.Service)
	m.checks[ruleMembership]++
	if !s.window && s.primary != "" && s.primary != e.Node && m.alive(s.primary) {
		m.record(ruleMembership, e, "promotion while another primary is live", 0, 0)
	}
	s.primary = e.Node
	s.members[e.Node] = true
	s.window = false
}

// noteDemotion clears the primary role (the management-race repair path).
func (m *Monitor) noteDemotion(e obs.Event) {
	s := m.svc(e.Service)
	m.checks[ruleMembership]++
	if s.primary == e.Node {
		s.primary = ""
	}
}

// noteRecommission returns a recovered host to the membership view (as a
// backup; only new connections replicate onto it).
func (m *Monitor) noteRecommission(e obs.Event) {
	s := m.svc(e.Service)
	m.checks[ruleMembership]++
	s.members[e.Node] = true
}

// Finish runs the end-of-run conservation check and builds the audit
// report. idle reports whether the simulation reached quiescence (no
// pending events): the frame-conservation rule is only decidable then —
// frames legitimately in flight are not leaks.
func (m *Monitor) Finish(idle bool) Report {
	if m.outstanding != nil && idle && !m.quiesceChecked {
		m.quiesceChecked = true
		m.outstandingEnd = m.outstanding()
		m.checks[ruleConservation]++
		if m.outstandingEnd > 0 {
			m.record(ruleConservation, obs.Event{}, "pooled frames outstanding at quiesce: frame leak", 0, uint64(m.outstandingEnd))
		}
	}
	return m.report()
}

// Violations returns the recorded violations, in observation order.
func (m *Monitor) Violations() []Violation { return m.violations }

// Clean reports whether no rule has failed so far.
func (m *Monitor) Clean() bool {
	for _, f := range m.failures {
		if f > 0 {
			return false
		}
	}
	return true
}

// Events returns how many bus events the monitor observed.
func (m *Monitor) Events() uint64 { return m.events }

// Frames returns how many fabric frames the monitor's tap counted.
func (m *Monitor) Frames() uint64 { return m.frames }

// Checks returns the total number of rule evaluations performed.
func (m *Monitor) Checks() uint64 {
	var total uint64
	for _, c := range m.checks {
		total += c
	}
	return total
}

// KindRole describes how the monitor uses a kind, and reports false for a
// kind it does not know — the completeness test fails on any new Kind
// until it is mapped here, so new event types cannot silently escape the
// oracle.
func KindRole(k obs.Kind) (string, bool) {
	switch k {
	case obs.KindPacketLoss, obs.KindQueueDrop, obs.KindMTUDrop:
		return "frame-conservation: counted drop reason", true
	case obs.KindNodeCrash:
		return "liveness: invalidates volatile cursors, opens reconfiguration windows", true
	case obs.KindNodeRestart:
		return "liveness: node returns (cursors stay invalid until it deposits again)", true
	case obs.KindRetransmit, obs.KindRTO, obs.KindFastRetransmit:
		return "census only: recovery activity, no safety obligation", true
	case obs.KindDeposit:
		return "deposit-cursor continuity; ft-gate minimum; client-delivery bound", true
	case obs.KindAckProgress:
		return "ack-monotonic; ft-gate client-side check", true
	case obs.KindMulticast, obs.KindRedirect:
		return "census only: fan-out and tunnel activity", true
	case obs.KindTunnelError:
		return "census only: counted delivery failure (frames accounted by drop kinds)", true
	case obs.KindChainSend, obs.KindChainRecv:
		return "chain-monotonic deposit-cursor sanity", true
	case obs.KindSuspicion:
		return "census only: detector activity precedes reconfiguration", true
	case obs.KindPromotion:
		return "membership: closes reconfiguration window, single-primary check", true
	case obs.KindDemotion:
		return "membership: clears the primary role", true
	case obs.KindRegistration:
		return "membership: adds member, single-primary check", true
	case obs.KindReconfig:
		return "membership: removes members, resets chain baselines", true
	case obs.KindRecommission:
		return "membership: re-adds a recovered backup", true
	case obs.KindClientDeliver:
		return "client-delivery conservation", true
	}
	return "", false
}
