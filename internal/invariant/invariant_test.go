package invariant

import (
	"strings"
	"testing"
	"time"

	"hydranet/internal/obs"
)

// harness is a monitor attached to a synthetic bus with a controllable
// clock, for driving hand-built event sequences through the rules.
type harness struct {
	m   *Monitor
	bus *obs.Bus
	now time.Duration
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{}
	h.bus = obs.NewBus(func() time.Duration { return h.now })
	h.m = New(cfg)
	h.m.Attach(h.bus)
	return h
}

func (h *harness) pub(e obs.Event) {
	h.now += time.Millisecond
	h.bus.Publish(e)
}

// deposit publishes a replica-side deposit: seq is the POST-deposit
// cursor, as the tcp stack emits it.
func (h *harness) deposit(node string, seq uint32, size int) {
	h.pub(obs.Event{Kind: obs.KindDeposit, Node: node,
		Service: "10.9.0.9:5001", Conn: "10.1.0.1:40000",
		Seq: uint64(seq), Size: size})
}

// clientAck publishes the client-side cumulative-ACK advance for the same
// flow (endpoints mirrored).
func (h *harness) clientAck(seq uint32) {
	h.pub(obs.Event{Kind: obs.KindAckProgress, Node: "client",
		Service: "10.1.0.1:40000", Conn: "10.9.0.9:5001", Seq: uint64(seq)})
}

func (h *harness) register(addr, mode string) {
	h.pub(obs.Event{Kind: obs.KindRegistration, Node: "rd",
		Service: "10.9.0.9:5001", Detail: addr + " as " + mode})
}

func violationsOf(m *Monitor, rule string) []Violation {
	var out []Violation
	for _, v := range m.Violations() {
		if v.Rule == rule {
			out = append(out, v)
		}
	}
	return out
}

func TestDepositCursorContinuity(t *testing.T) {
	h := newHarness(t, Config{})
	h.deposit("s0", 1000, 0) // baseline (post-SYN cursor)
	h.deposit("s0", 1500, 500)
	h.deposit("s0", 2500, 1000)
	if !h.m.Clean() {
		t.Fatalf("clean advance flagged: %v", h.m.Violations())
	}

	// Duplicate delivery: cursor advances less than the bytes deposited.
	h.deposit("s0", 2600, 600)
	vs := violationsOf(h.m, RuleDeposit)
	if len(vs) != 1 {
		t.Fatalf("want 1 deposit violation, got %d: %v", len(vs), h.m.Violations())
	}
	if vs[0].Want != 3100 || vs[0].Got != 2600 {
		t.Fatalf("want cursor 3100 got %d, observed %d", vs[0].Want, vs[0].Got)
	}
	if !strings.Contains(vs[0].Detail, "duplicate") {
		t.Fatalf("short advance should read as duplicate delivery: %q", vs[0].Detail)
	}

	// Skipped bytes: cursor advances more than the bytes deposited.
	h.deposit("s0", 4000, 100)
	vs = violationsOf(h.m, RuleDeposit)
	if len(vs) != 2 || !strings.Contains(vs[1].Detail, "skipped") {
		t.Fatalf("long advance should read as skipped bytes: %v", vs)
	}
}

func TestDepositCursorResetsAcrossCrash(t *testing.T) {
	h := newHarness(t, Config{})
	h.deposit("s0", 5000, 0)
	h.pub(obs.Event{Kind: obs.KindNodeCrash, Node: "s0"})
	h.pub(obs.Event{Kind: obs.KindNodeRestart, Node: "s0"})
	// A fresh connection starts a fresh cursor; the stale baseline must
	// not condemn it.
	h.deposit("s0", 1000, 0)
	if !h.m.Clean() {
		t.Fatalf("post-restart cursor flagged against stale baseline: %v", h.m.Violations())
	}
}

func TestAckMonotonic(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientAck(1000)
	h.clientAck(1000) // equal is legal (duplicate ACKs exist)
	h.clientAck(2000)
	if !h.m.Clean() {
		t.Fatalf("monotone ACKs flagged: %v", h.m.Violations())
	}
	h.clientAck(1500)
	vs := violationsOf(h.m, RuleAck)
	if len(vs) != 1 || vs[0].Want != 2000 || vs[0].Got != 1500 {
		t.Fatalf("ACK regression not reported correctly: %v", h.m.Violations())
	}
}

func TestFTGate(t *testing.T) {
	h := newHarness(t, Config{})
	h.m.MapAddr("10.3.0.2", "s0")
	h.m.MapAddr("10.3.0.3", "s1")
	h.register("10.3.0.2", "primary")
	h.register("10.3.0.3", "backup")

	h.deposit("s0", 3000, 0)
	h.deposit("s1", 2000, 0)
	// ACK at min(3000,2000)+1 = 2001 is the highest legal value.
	h.clientAck(2001)
	if !h.m.Clean() {
		t.Fatalf("gated ACK flagged: %v", h.m.Violations())
	}
	// One past the FIN slack is a gate violation, pinned on the replica
	// holding the minimum.
	h.clientAck(2002)
	vs := violationsOf(h.m, RuleGate)
	if len(vs) != 1 {
		t.Fatalf("premature ACK not reported: %v", h.m.Violations())
	}
	if vs[0].Want != 2001 || vs[0].Got != 2002 || vs[0].Node != "s1" {
		t.Fatalf("gate forensics wrong: want=2001 got=2002 node=s1, have %+v", vs[0])
	}
}

func TestFTGateSuspendedInReconfigWindow(t *testing.T) {
	h := newHarness(t, Config{})
	h.m.MapAddr("10.3.0.2", "s0")
	h.m.MapAddr("10.3.0.3", "s1")
	h.register("10.3.0.2", "primary")
	h.register("10.3.0.3", "backup")
	h.deposit("s0", 3000, 0)
	h.deposit("s1", 2000, 0)
	// Crash opens the window: the ACK beyond s1's stale cursor must not
	// flag while membership is in flux.
	h.pub(obs.Event{Kind: obs.KindNodeCrash, Node: "s1"})
	h.clientAck(2500)
	if !h.m.Clean() {
		t.Fatalf("gate fired inside reconfiguration window: %v", h.m.Violations())
	}
	// Reconfig removes s1, promotion closes the window; the bound is now
	// min over {s0} = 3000.
	h.pub(obs.Event{Kind: obs.KindReconfig, Node: "rd",
		Service: "10.9.0.9:5001", Detail: "failure [10.3.0.3]"})
	h.pub(obs.Event{Kind: obs.KindPromotion, Node: "s0", Service: "10.9.0.9:5001"})
	h.clientAck(3001)
	if !h.m.Clean() {
		t.Fatalf("post-reconfig gated ACK flagged: %v", h.m.Violations())
	}
	h.clientAck(3002)
	if len(violationsOf(h.m, RuleGate)) != 1 {
		t.Fatalf("post-reconfig premature ACK not reported: %v", h.m.Violations())
	}
}

func TestChainMonotonic(t *testing.T) {
	h := newHarness(t, Config{})
	send := func(seq, ack uint32) {
		h.pub(obs.Event{Kind: obs.KindChainSend, Node: "s0",
			Service: "10.9.0.9:5001", Conn: "10.1.0.1:40000",
			Seq: uint64(seq), Ack: uint64(ack)})
	}
	send(100, 50)
	send(200, 50)
	send(200, 80)
	// A retransmitted segment echoes a lower SndNxt — legitimate, not a
	// violation; only the deposit cursor is monotone.
	send(150, 80)
	if !h.m.Clean() {
		t.Fatalf("monotone chain deposit cursors flagged: %v", h.m.Violations())
	}
	send(150, 60)
	vs := violationsOf(h.m, RuleChain)
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "RcvNxt") || vs[0].Want != 80 || vs[0].Got != 60 {
		t.Fatalf("chain deposit-cursor regression not reported: %v", h.m.Violations())
	}
}

func TestChainBaselineResetsOnReconfig(t *testing.T) {
	h := newHarness(t, Config{})
	h.pub(obs.Event{Kind: obs.KindChainRecv, Node: "s1",
		Service: "10.9.0.9:5001", Conn: "10.1.0.1:40000", Seq: 500, Ack: 500})
	h.pub(obs.Event{Kind: obs.KindReconfig, Node: "rd",
		Service: "10.9.0.9:5001", Detail: "failure [10.3.0.2]"})
	// After re-chaining the upstream neighbor changed; a lower cursor from
	// the new epoch is legitimate.
	h.pub(obs.Event{Kind: obs.KindChainRecv, Node: "s1",
		Service: "10.9.0.9:5001", Conn: "10.1.0.1:40000", Seq: 300, Ack: 300})
	if !h.m.Clean() {
		t.Fatalf("new-epoch chain cursor flagged against stale baseline: %v", h.m.Violations())
	}
}

func TestMembershipSinglePrimary(t *testing.T) {
	h := newHarness(t, Config{})
	h.m.MapAddr("10.3.0.2", "s0")
	h.m.MapAddr("10.3.0.3", "s1")
	h.register("10.3.0.2", "primary")
	h.register("10.3.0.3", "backup")
	if !h.m.Clean() {
		t.Fatalf("normal registration flagged: %v", h.m.Violations())
	}
	// Promotion of s1 while s0 is alive and primary, outside any window:
	// split-brain.
	h.pub(obs.Event{Kind: obs.KindPromotion, Node: "s1", Service: "10.9.0.9:5001"})
	vs := violationsOf(h.m, RuleMembership)
	if len(vs) != 1 {
		t.Fatalf("split-brain promotion not reported: %v", h.m.Violations())
	}
}

func TestMembershipFailoverIsClean(t *testing.T) {
	h := newHarness(t, Config{})
	h.m.MapAddr("10.3.0.2", "s0")
	h.m.MapAddr("10.3.0.3", "s1")
	h.register("10.3.0.2", "primary")
	h.register("10.3.0.3", "backup")
	h.pub(obs.Event{Kind: obs.KindNodeCrash, Node: "s0"})
	h.pub(obs.Event{Kind: obs.KindReconfig, Node: "rd",
		Service: "10.9.0.9:5001", Detail: "failure [10.3.0.2]"})
	h.pub(obs.Event{Kind: obs.KindPromotion, Node: "s1", Service: "10.9.0.9:5001"})
	if !h.m.Clean() {
		t.Fatalf("legitimate failover flagged: %v", h.m.Violations())
	}
}

func TestClientDeliveryConservation(t *testing.T) {
	h := newHarness(t, Config{})
	h.pub(obs.Event{Kind: obs.KindDeposit, Node: "client",
		Service: "10.1.0.1:40000", Conn: "10.9.0.9:5001", Seq: 1000, Size: 800})
	h.pub(obs.Event{Kind: obs.KindClientDeliver, Node: "client", Size: 800})
	if !h.m.Clean() {
		t.Fatalf("conserved delivery flagged: %v", h.m.Violations())
	}
	h.pub(obs.Event{Kind: obs.KindClientDeliver, Node: "client", Size: 1})
	vs := violationsOf(h.m, RuleDelivery)
	if len(vs) != 1 || vs[0].Want != 800 || vs[0].Got != 801 {
		t.Fatalf("over-delivery not reported: %v", h.m.Violations())
	}
}

func TestFrameConservationAtQuiesce(t *testing.T) {
	out := 3
	m := New(Config{Outstanding: func() int { return out }})
	r := m.Finish(true)
	if r.Clean || !r.QuiesceChecked || r.OutstandingFrames != 3 {
		t.Fatalf("frame leak not reported: %+v", r)
	}
	if len(violationsOf(m, RuleConservation)) != 1 {
		t.Fatalf("leak violation missing: %v", m.Violations())
	}

	// Not idle: undecidable, no violation, not checked.
	m2 := New(Config{Outstanding: func() int { return 3 }})
	r2 := m2.Finish(false)
	if !r2.Clean || r2.QuiesceChecked {
		t.Fatalf("non-quiescent run should not decide conservation: %+v", r2)
	}
}

func TestViolationCapCountsBeyond(t *testing.T) {
	h := newHarness(t, Config{MaxViolations: 2})
	h.clientAck(1000)
	for i := 0; i < 5; i++ {
		h.clientAck(100)  // regression against the 1000 baseline
		h.clientAck(1000) // restore the baseline for the next lap
	}
	vs := h.m.Violations()
	if len(vs) != 2 {
		t.Fatalf("cap not enforced: %d recorded", len(vs))
	}
	var r = h.m.Finish(false)
	for _, rr := range r.Rules {
		if rr.Rule == RuleAck && rr.Violations != 5 {
			t.Fatalf("beyond-cap violations not counted: %+v", rr)
		}
	}
}

func TestReportDeterministicShape(t *testing.T) {
	h := newHarness(t, Config{Scenario: "unit"})
	h.deposit("s0", 1000, 0)
	h.deposit("s0", 2000, 1000)
	r := h.m.Finish(true)
	if r.Scenario != "unit" || !r.Clean {
		t.Fatalf("report header wrong: %+v", r)
	}
	if len(r.Rules) != numRules {
		t.Fatalf("want %d rule rows, got %d", numRules, len(r.Rules))
	}
	for i, rr := range r.Rules {
		if rr.Rule != ruleNames[i] {
			t.Fatalf("rule order not fixed: %v", r.Rules)
		}
	}
	for i := 1; i < len(r.EventCounts); i++ {
		if r.EventCounts[i-1].Kind >= r.EventCounts[i].Kind {
			t.Fatalf("event counts not name-sorted: %v", r.EventCounts)
		}
	}
	if r.TotalViolations() != 0 {
		t.Fatalf("clean run reports violations: %+v", r)
	}
}

func TestOnViolationHookFires(t *testing.T) {
	h := newHarness(t, Config{})
	var got []Violation
	h.m.OnViolation(func(v Violation) { got = append(got, v) })
	h.clientAck(1000)
	h.clientAck(500)
	if len(got) != 1 || got[0].Rule != RuleAck {
		t.Fatalf("hook did not fire on violation: %v", got)
	}
	if got[0].Time == 0 {
		t.Fatalf("violation not stamped with virtual time")
	}
}

// TestKindRoleComplete asserts every obs kind has a monitor rule mapping,
// so a new event type cannot silently escape the oracle (satellite: kind
// completeness).
func TestKindRoleComplete(t *testing.T) {
	for _, k := range obs.Kinds() {
		role, ok := KindRole(k)
		if !ok || role == "" {
			t.Errorf("kind %v has no monitor rule mapping; teach KindRole (and a rule, if it carries a safety obligation)", k)
		}
	}
	if _, ok := KindRole(obs.Kind(250)); ok {
		t.Errorf("unknown kind should not report a role")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: RuleGate, Time: 42 * time.Millisecond,
		Node: "s1", Conn: "10.9.0.9:5001", Detail: "premature ACK", Want: 10, Got: 20}
	s := v.String()
	for _, part := range []string{"ft-gate", "premature ACK", "s1", "want=10", "got=20"} {
		if !strings.Contains(s, part) {
			t.Fatalf("String() missing %q: %s", part, s)
		}
	}
}
