package invariant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"hydranet/internal/obs"
)

// Violation is one forensic record: the violated rule, the virtual-clock
// instant, the offending connection and host, the expected and observed
// cursor values, and the triggering event verbatim.
type Violation struct {
	Rule    string        `json:"rule"`
	Time    time.Duration `json:"time"`
	Node    string        `json:"node,omitempty"`
	Service string        `json:"service,omitempty"`
	Conn    string        `json:"conn,omitempty"`
	Detail  string        `json:"detail"`
	Want    uint64        `json:"want,omitempty"`
	Got     uint64        `json:"got,omitempty"`
	Event   obs.Event     `json:"event"`
}

// String renders the violation for terminal output (cold path; the hot
// path stores only structured fields).
func (v Violation) String() string {
	s := fmt.Sprintf("%-12v %s: %s", v.Time, v.Rule, v.Detail)
	if v.Node != "" {
		s += fmt.Sprintf(" node=%s", v.Node)
	}
	if v.Service != "" {
		s += fmt.Sprintf(" service=%s", v.Service)
	}
	if v.Conn != "" {
		s += fmt.Sprintf(" conn=%s", v.Conn)
	}
	if v.Want != 0 || v.Got != 0 {
		s += fmt.Sprintf(" want=%d got=%d", v.Want, v.Got)
	}
	return s
}

// RuleReport is one rule's evaluation census.
type RuleReport struct {
	Rule       string `json:"rule"`
	Checks     uint64 `json:"checks"`
	Violations uint64 `json:"violations"`
}

// KindCount is one event kind's observation count.
type KindCount struct {
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
}

// Report is a run's audit verdict. Every field is deterministic — no
// worker counts, no wall-clock facts — so reports from the same seed diff
// byte-identical across `-workers` values.
type Report struct {
	Scenario          string       `json:"scenario,omitempty"`
	Clean             bool         `json:"clean"`
	Events            uint64       `json:"events"`
	Frames            uint64       `json:"frames"`
	FrameBytes        uint64       `json:"frame_bytes"`
	Checks            uint64       `json:"checks"`
	Rules             []RuleReport `json:"rules"`
	EventCounts       []KindCount  `json:"event_counts,omitempty"`
	QuiesceChecked    bool         `json:"quiesce_checked"`
	OutstandingFrames int          `json:"outstanding_frames"`
	Violations        []Violation  `json:"violations,omitempty"`
}

// TotalViolations sums violations across rules (recorded or not).
func (r Report) TotalViolations() uint64 {
	var total uint64
	for _, rr := range r.Rules {
		total += rr.Violations
	}
	return total
}

// report builds the deterministic audit report from current state.
func (m *Monitor) report() Report {
	r := Report{
		Scenario:          m.scenario,
		Clean:             m.Clean(),
		Events:            m.events,
		Frames:            m.frames,
		FrameBytes:        m.frameBytes,
		Checks:            m.Checks(),
		QuiesceChecked:    m.quiesceChecked,
		OutstandingFrames: m.outstandingEnd,
		Violations:        m.violations,
	}
	for i := 0; i < numRules; i++ {
		r.Rules = append(r.Rules, RuleReport{
			Rule:       ruleNames[i],
			Checks:     m.checks[i],
			Violations: m.failures[i],
		})
	}
	for _, k := range obs.Kinds() {
		if c := m.kindCounts[k]; c > 0 {
			r.EventCounts = append(r.EventCounts, KindCount{Kind: k.String(), Count: c})
		}
	}
	sort.Slice(r.EventCounts, func(i, j int) bool {
		return r.EventCounts[i].Kind < r.EventCounts[j].Kind
	})
	return r
}

// WriteJSON writes the report as indented JSON to path.
func (r Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
