// Package metrics provides the small statistics toolkit the experiment
// harness uses: streaming summaries (mean, deviation, percentiles) for
// multi-seed runs, and aligned-table rendering for the CLI tools.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates scalar samples.
type Summary struct {
	samples []float64
	sorted  []float64 // cached sorted copy; nil when stale
}

// Add appends a sample.
func (s *Summary) Add(x float64) {
	s.samples = append(s.samples, x)
	s.sorted = nil
}

// N returns the number of samples.
func (s *Summary) N() int { return len(s.samples) }

// Mean returns the arithmetic mean (0 with no samples).
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.samples {
		sum += x
	}
	return sum / float64(len(s.samples))
}

// Std returns the sample standard deviation (0 with fewer than 2 samples).
func (s *Summary) Std() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, x := range s.samples {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, x := range s.samples[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, x := range s.samples[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
// The sorted copy is cached across calls and invalidated by Add, so
// repeated percentile queries in multi-seed experiment loops do not re-sort
// the sample set every time.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.samples...)
		sort.Float64s(s.sorted)
	}
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 100 {
		return s.sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.sorted[rank-1]
}

// String renders "mean ± std (n=N)".
func (s *Summary) String() string {
	if s.N() <= 1 {
		return fmt.Sprintf("%.1f", s.Mean())
	}
	return fmt.Sprintf("%.1f ± %.1f", s.Mean(), s.Std())
}

// Table renders aligned columns for CLI output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table, right-aligning every column.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
