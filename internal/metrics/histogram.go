package metrics

import (
	"fmt"
	"math/bits"
)

// Histogram is a log-bucketed (base-2) histogram for non-negative,
// latency-like samples. Bucket 0 covers [0,1); bucket i (i ≥ 1) covers
// [2^(i-1), 2^i). The unit is the caller's choice — the TCP stack feeds it
// RTT samples in milliseconds. Observation is allocation-free, so it can
// sit on protocol hot paths.
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

const numBuckets = 64

// bucketIndex maps a sample to its bucket.
func bucketIndex(v float64) int {
	if v < 1 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// bucketBounds returns the [lo, hi) range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

// Observe records one sample. Negative samples count as zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket, clamped to the observed min and max.
func (h *Histogram) Quantile(q float64) float64 {
	v := quantileFromBuckets(h.counts[:], h.count, q)
	if v < h.min {
		v = h.min
	}
	if v > h.max && h.count > 0 {
		v = h.max
	}
	return v
}

func quantileFromBuckets(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	lo, hi := bucketBounds(len(counts) - 1)
	_ = lo
	return hi
}

// Merge folds other's samples into h, as if every sample other observed
// had been fed to h directly: counts and sums add bucket-wise, the extremes
// widen, and quantiles follow from the combined buckets. Merging an empty
// (or nil) histogram is a no-op. Parallel sweeps use this to combine
// per-worker histograms into one run-wide distribution.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
}

// HistogramBucket is one non-empty bucket in a snapshot: Count samples fell
// in [Lo, Hi).
type HistogramBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a JSON-serializable copy of a histogram's state,
// with convenience quantiles precomputed.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, HistogramBucket{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

// String renders the snapshot's headline statistics on one line, in the
// histogram's native unit — handy for -stats style CLI output.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Diff returns the interval histogram: the samples observed since prev was
// taken. Min and Max still describe the whole run (the interval extremes
// are not recoverable); quantiles are recomputed from the interval buckets.
func (s HistogramSnapshot) Diff(prev HistogramSnapshot) HistogramSnapshot {
	var counts [numBuckets]uint64
	for _, b := range s.Buckets {
		counts[bucketIndex(b.Lo)] = b.Count
	}
	for _, b := range prev.Buckets {
		i := bucketIndex(b.Lo)
		if counts[i] >= b.Count {
			counts[i] -= b.Count
		} else {
			counts[i] = 0
		}
	}
	d := HistogramSnapshot{
		Count: s.Count - prev.Count,
		Sum:   s.Sum - prev.Sum,
		Min:   s.Min, Max: s.Max,
	}
	if d.Count > 0 {
		d.Mean = d.Sum / float64(d.Count)
	}
	d.P50 = quantileFromBuckets(counts[:], d.Count, 0.50)
	d.P90 = quantileFromBuckets(counts[:], d.Count, 0.90)
	d.P99 = quantileFromBuckets(counts[:], d.Count, 0.99)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		d.Buckets = append(d.Buckets, HistogramBucket{Lo: lo, Hi: hi, Count: c})
	}
	return d
}
