package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary not zero-valued")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample std of this classic dataset is ~2.138.
	if got := s.Std(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Std = %v, want ~2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct{ p, want float64 }{
		{0, 1}, {50, 50}, {90, 90}, {99, 99}, {100, 100},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		pct := math.Mod(math.Abs(p), 100)
		v := s.Percentile(pct)
		return v >= s.Min() && v <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		const eps = 1e-6
		return s.Mean() >= s.Min()-eps && s.Mean() <= s.Max()+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(5)
	if got := s.String(); got != "5.0" {
		t.Errorf("single-sample String = %q", got)
	}
	s.Add(7)
	if got := s.String(); !strings.Contains(got, "±") {
		t.Errorf("multi-sample String = %q, want ± form", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("size", "throughput")
	tb.AddRow("16", "29.1")
	tb.AddRow("1024", "546.0")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("columns not aligned:\n%s", out)
	}
	// Short rows are padded, long rows don't panic.
	tb.AddRow("1")
	_ = tb.String()
}
