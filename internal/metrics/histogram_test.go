package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 10, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-23.2) > 1e-9 {
		t.Errorf("Mean = %v, want 23.2", got)
	}
	// Quantiles are bucket-interpolated; they must stay within [min, max]
	// and be monotone in q.
	prev := h.Quantile(0)
	for q := 0.1; q <= 1.0; q += 0.1 {
		v := h.Quantile(q)
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, h.Min(), h.Max())
		}
		if v < prev {
			t.Fatalf("Quantile not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative observation not clamped: min=%v", h.Min())
	}
}

func TestHistogramQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		var h Histogram
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(math.Abs(v))
			n++
		}
		if n == 0 {
			return true
		}
		qq := math.Mod(math.Abs(q), 1)
		v := h.Quantile(qq)
		return v >= h.Min() && v <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramSnapshotDiff(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(4) // bucket [4,8)
	}
	first := h.Snapshot()
	for i := 0; i < 5; i++ {
		h.Observe(100) // bucket [64,128)
	}
	second := h.Snapshot()

	d := second.Diff(first)
	if d.Count != 5 {
		t.Fatalf("diff Count = %d, want 5", d.Count)
	}
	total := uint64(0)
	for _, b := range d.Buckets {
		total += b.Count
		if b.Count > 0 && b.Lo < 64 {
			t.Fatalf("diff kept old bucket %+v", b)
		}
	}
	if total != 5 {
		t.Fatalf("diff buckets sum to %d, want 5", total)
	}
	if d.P50 < 64 || d.P50 > 128 {
		t.Errorf("diff P50 = %v, want within [64,128]", d.P50)
	}
}

func TestPercentileCacheInvalidatedOnAdd(t *testing.T) {
	var s Summary
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("P100 = %v, want 10", got)
	}
	// The sorted cache must be rebuilt after Add, not reused.
	s.Add(1000)
	if got := s.Percentile(100); got != 1000 {
		t.Fatalf("P100 after Add = %v, want 1000 (stale percentile cache?)", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	// Two shards plus a reference fed every sample directly: merging the
	// shards must reproduce the reference exactly — counts, sum, extremes
	// and every quantile (both halves of each sample stream land in the
	// same buckets either way).
	samplesA := []float64{0.5, 2, 3, 40, 700}
	samplesB := []float64{1, 8, 9, 1000, 0.1, 65}
	var a, b, ref Histogram
	for _, v := range samplesA {
		a.Observe(v)
		ref.Observe(v)
	}
	for _, v := range samplesB {
		b.Observe(v)
		ref.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != ref.Count() {
		t.Fatalf("Count = %d, want %d", a.Count(), ref.Count())
	}
	if a.Mean() != ref.Mean() {
		t.Errorf("Mean = %v, want %v", a.Mean(), ref.Mean())
	}
	if a.Min() != ref.Min() || a.Max() != ref.Max() {
		t.Errorf("Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), ref.Min(), ref.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Quantile(q), ref.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}

	// Merging into an empty histogram copies; merging an empty (or nil)
	// histogram changes nothing.
	var empty Histogram
	empty.Merge(&ref)
	if empty.Count() != ref.Count() || empty.Min() != ref.Min() {
		t.Errorf("merge into empty: Count=%d Min=%v", empty.Count(), empty.Min())
	}
	before := a.Snapshot()
	a.Merge(&Histogram{})
	a.Merge(nil)
	after := a.Snapshot()
	if before.Count != after.Count || before.Sum != after.Sum || before.Min != after.Min {
		t.Errorf("merge of empty mutated: %+v -> %+v", before, after)
	}
}
