// Quickstart: a fault-tolerant echo service in ~60 lines.
//
// A client connects to a service address that belongs to no physical
// machine. The redirector multicasts its packets to a primary and a backup
// replica; only the primary answers. When the primary is killed mid
// conversation, the backup is promoted and the SAME client connection keeps
// working — the client stack is ordinary TCP and notices nothing.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"hydranet"
	"hydranet/internal/app"
)

func main() {
	// Build the network: client — redirector — {s0, s1}.
	net := hydranet.New(hydranet.Config{Seed: 1})
	client := net.AddHost("client", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	s0 := net.AddHost("s0", hydranet.HostConfig{})
	s1 := net.AddHost("s1", hydranet.HostConfig{})
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	for _, h := range []*hydranet.Host{client, s0, s1} {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	// Deploy the echo service on both replicas under a virtual address.
	svc := hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 7}
	ftsvc, err := net.DeployFT(svc, rd, []*hydranet.Host{s0, s1},
		hydranet.FTOptions{}, func(c *hydranet.Conn) { app.Echo(c) })
	if err != nil {
		panic(err)
	}
	net.Settle()
	fmt.Printf("deployed echo at %s, chain: %v\n", svc, ftsvc.Chain())

	// Talk to it.
	conn, err := client.Dial(svc)
	if err != nil {
		panic(err)
	}
	var echoed []byte
	app.Collect(conn, &echoed)
	conn.OnConnected(func() { conn.Write([]byte("hello before the crash | ")) })
	net.RunFor(2 * time.Second)
	fmt.Printf("echoed so far: %q\n", echoed)

	// Kill the primary and keep talking on the SAME connection.
	dead := ftsvc.CrashPrimary()
	fmt.Printf("crashed primary %s at t=%v\n", dead.Name(), net.Now())
	conn.Write([]byte("hello after the crash"))
	net.RunFor(30 * time.Second)

	fmt.Printf("echoed in total: %q\n", echoed)
	fmt.Printf("connection state: %v (never reset, never redialed)\n", conn.State())
	fmt.Printf("surviving chain: %v\n", ftsvc.Chain())
}
