// Internet reproduces the paper's Figure 1 in full: an internetwork with
// two ISPs, both kinds of HydraNet replication side by side, and the
// network diagnostics to see the topology.
//
//   - southwest.net and northeast.net each route their clients through
//     their own redirector; the redirectors mirror each other's tables.
//   - www.northwest.com (port 80) is the origin host's web service,
//     replicated for SCALING onto a host server inside northeast.net, so
//     northeastern clients are served locally (the paper's hot-spot
//     diffusion).
//   - audio.south.com (port 554, dark triangle in the figure) is a
//     FAULT-TOLERANT service replicated on two hosts; mid-broadcast its
//     primary dies and both ISPs' listeners keep their streams.
//
// Run with: go run ./examples/internet
package main

import (
	"fmt"
	"strings"
	"time"

	"hydranet"
	"hydranet/internal/app"
)

func main() {
	net := hydranet.New(hydranet.Config{Seed: 7})

	// Backbone: two ISP redirectors joined by a WAN link.
	rdSW := net.AddRedirector("rd-southwest", hydranet.HostConfig{})
	rdNE := net.AddRedirector("rd-northeast", hydranet.HostConfig{})
	wan := hydranet.LinkConfig{Rate: 45_000_000, Delay: 30 * time.Millisecond} // a T3
	lan := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	net.Link(rdSW.Host, rdNE.Host, wan)

	// southwest.net: a client plus the audio service's primary host.
	clientSW := net.AddHost("client-sw", hydranet.HostConfig{})
	audio0 := net.AddHost("audio-s0", hydranet.HostConfig{})
	net.Link(clientSW, rdSW.Host, lan)
	net.Link(audio0, rdSW.Host, lan)

	// northeast.net: a client, a host server, and the audio backup.
	clientNE := net.AddHost("client-ne", hydranet.HostConfig{})
	hostServer := net.AddHost("hostserver-ne", hydranet.HostConfig{})
	audio1 := net.AddHost("audio-s1", hydranet.HostConfig{})
	net.Link(clientNE, rdNE.Host, lan)
	net.Link(hostServer, rdNE.Host, lan)
	net.Link(audio1, rdNE.Host, lan)

	// northwest.com: the web origin host, off the southwest ISP.
	origin := net.AddHost("www-origin", hydranet.HostConfig{})
	net.LinkAddr(origin, rdSW.Host, wan,
		hydranet.MustAddr("192.20.225.20"), hydranet.MustAddr("192.20.225.1"))
	net.AutoRoute()

	// The two redirectors share fault-tolerant table entries.
	rdSW.Mirror(rdNE)
	rdNE.Mirror(rdSW)

	// --- www.northwest.com: scaling replication --------------------------
	webAddr := hydranet.MustAddr("192.20.225.20")
	webSvc := hydranet.ServiceID{Addr: webAddr, Port: 80}
	serve := func(tag string) func(*hydranet.Conn) {
		return func(c *hydranet.Conn) {
			c.OnReadable(func() {
				buf := make([]byte, 256)
				if n := c.Read(buf); n > 0 {
					app.Source(c, []byte("200 OK from "+tag), true)
				}
			})
		}
	}
	httpd, err := origin.Listen(webAddr, 80)
	if err != nil {
		panic(err)
	}
	httpd.SetAcceptFunc(serve("the origin host"))
	// Replica installed near the northeastern clients, registered with
	// THEIR redirector.
	if err := net.DeployScale(webSvc, rdNE, []hydranet.ScaleTarget{
		{Host: hostServer, Metric: 1},
	}, serve("the northeast host server")); err != nil {
		panic(err)
	}

	// --- audio.south.com: fault-tolerant replication ---------------------
	audioSvc := hydranet.ServiceID{Addr: hydranet.MustAddr("199.77.0.5"), Port: 554}
	const frames = 120
	broadcaster := func(c *hydranet.Conn) {
		var pending []byte
		next := 0
		flush := func() {
			for len(pending) > 0 {
				n := c.Write(pending)
				if n == 0 {
					return
				}
				pending = pending[n:]
			}
		}
		var tick func()
		tick = func() {
			if next < frames {
				pending = append(pending, []byte(fmt.Sprintf("frame-%03d;", next))...)
				next++
				net.Scheduler().After(50*time.Millisecond, tick)
			}
			flush()
		}
		c.OnWritable(flush)
		tick()
	}
	audio, err := net.DeployFT(audioSvc, rdSW, []*hydranet.Host{audio0, audio1},
		hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: 2}},
		broadcaster)
	if err != nil {
		panic(err)
	}
	net.Settle()

	// --- Drive it ---------------------------------------------------------
	fetch := func(who *hydranet.Host) string {
		conn, err := who.Dial(webSvc)
		if err != nil {
			return err.Error()
		}
		var resp []byte
		app.Collect(conn, &resp)
		app.Source(conn, []byte("GET /\n"), false)
		net.RunFor(3 * time.Second)
		return string(resp)
	}
	fmt.Println("-- web requests (scaling replication) --")
	fmt.Printf("southwest client: %s\n", fetch(clientSW))
	fmt.Printf("northeast client: %s\n", fetch(clientNE))

	fmt.Println("\n-- audio broadcast (fault-tolerant replication) --")
	var swStream, neStream []byte
	connSW, _ := clientSW.Dial(audioSvc)
	connNE, _ := clientNE.Dial(audioSvc)
	app.Collect(connSW, &swStream)
	app.Collect(connNE, &neStream)
	net.RunFor(2 * time.Second)
	dead := audio.CrashPrimary()
	fmt.Printf("t=%v: audio primary %s crashed mid-broadcast\n", net.Now(), dead.Name())
	net.RunFor(60 * time.Second)

	check := func(name string, stream []byte) {
		got := strings.Count(string(stream), ";")
		ok := "COMPLETE AND GAPLESS"
		for i := 0; i < got; i++ {
			if !strings.Contains(string(stream), fmt.Sprintf("frame-%03d;", i)) {
				ok = "DAMAGED"
			}
		}
		fmt.Printf("%s received %d/%d frames — %s\n", name, got, frames, ok)
	}
	check("southwest listener", swStream)
	check("northeast listener", neStream)
	fmt.Printf("surviving audio chain: %v\n", audio.Chain())

	// --- Diagnostics -------------------------------------------------------
	fmt.Println("\n-- traceroute client-sw → www origin --")
	clientSW.Traceroute(hydranet.MustAddr("192.20.225.20"), 6, func(hops []hydranet.Addr) {
		for i, h := range hops {
			fmt.Printf("  %d  %s\n", i+1, h)
		}
	})
	net.RunFor(20 * time.Second)
}
