// Mediastream models the paper's motivating scenario: a live broadcast
// ("the video service serving potentially many thousands of clients with
// live action must guarantee uninterrupted broadcast").
//
// A frame source runs on every replica of a fault-tolerant streaming
// service; several clients subscribe over ordinary TCP connections. Halfway
// through the broadcast the primary server is killed. Because the backups
// produced the identical byte stream in lockstep (held back by the
// acknowledgment channel), the promoted backup resumes every viewer's
// stream exactly where it stopped — no viewer reconnects, no frame is lost
// or duplicated.
//
// Run with: go run ./examples/mediastream
package main

import (
	"fmt"
	"time"

	"hydranet"
)

const (
	frameSize     = 1316 // a handful of MPEG-TS cells, the classic unit
	frameInterval = 40 * time.Millisecond
	broadcastLen  = 250 // frames (10 seconds of "video")
	viewers       = 4
)

// frame builds deterministic frame content so replicas generate identical
// streams and viewers can verify continuity.
func frame(i int) []byte {
	b := make([]byte, frameSize)
	b[0] = byte(i >> 8)
	b[1] = byte(i)
	for j := 2; j < frameSize; j++ {
		b[j] = byte(i * j)
	}
	return b
}

// broadcaster runs on every replica: it feeds the frame schedule into each
// viewer connection, buffering when the window is closed so no replica ever
// diverges from the common stream.
func broadcaster(net *hydranet.Net) func(*hydranet.Conn) {
	return func(c *hydranet.Conn) {
		var pending []byte
		next := 0
		flush := func() {
			for len(pending) > 0 {
				n := c.Write(pending)
				if n == 0 {
					return
				}
				pending = pending[n:]
			}
			if next >= broadcastLen && len(pending) == 0 {
				c.Close()
			}
		}
		var tick func()
		tick = func() {
			if next < broadcastLen {
				pending = append(pending, frame(next)...)
				next++
				net.Scheduler().After(frameInterval, tick)
			}
			flush()
		}
		c.OnWritable(flush)
		tick()
	}
}

type viewer struct {
	name      string
	received  []byte
	badFrames int
	gaps      int
}

func (v *viewer) verify() {
	frames := len(v.received) / frameSize
	expect := 0
	for i := 0; i < frames; i++ {
		f := v.received[i*frameSize : (i+1)*frameSize]
		idx := int(f[0])<<8 | int(f[1])
		if idx != expect {
			v.gaps++
			expect = idx
		}
		want := frame(idx)
		for j := range f {
			if f[j] != want[j] {
				v.badFrames++
				break
			}
		}
		expect++
	}
}

func main() {
	net := hydranet.New(hydranet.Config{Seed: 3})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	s0 := net.AddHost("s0", hydranet.HostConfig{})
	s1 := net.AddHost("s1", hydranet.HostConfig{})
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: 2 * time.Millisecond}
	net.Link(s0, rd.Host, link)
	net.Link(s1, rd.Host, link)
	var clients []*hydranet.Host
	for i := 0; i < viewers; i++ {
		h := net.AddHost(fmt.Sprintf("viewer%d", i), hydranet.HostConfig{})
		clients = append(clients, h)
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	svc := hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 554}
	ftsvc, err := net.DeployFT(svc, rd, []*hydranet.Host{s0, s1},
		hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: 2}},
		broadcaster(net))
	if err != nil {
		panic(err)
	}
	net.Settle()
	fmt.Printf("broadcast service live at %s, chain %v\n", svc, ftsvc.Chain())

	var vs []*viewer
	for i, h := range clients {
		v := &viewer{name: h.Name()}
		vs = append(vs, v)
		conn, err := h.Dial(svc)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, 8192)
		conn.OnReadable(func() {
			for {
				n := conn.Read(buf)
				if n == 0 {
					break
				}
				v.received = append(v.received, buf[:n]...)
			}
		})
		_ = i
	}

	// Let the broadcast run, then kill the primary mid-stream.
	net.RunFor(4 * time.Second)
	dead := ftsvc.CrashPrimary()
	fmt.Printf("t=%v: primary %s died mid-broadcast (viewers have ~%d frames)\n",
		net.Now(), dead.Name(), len(vs[0].received)/frameSize)

	net.RunFor(90 * time.Second)

	total := broadcastLen * frameSize
	fmt.Printf("\nafter fail-over (chain %v):\n", ftsvc.Chain())
	ok := true
	for _, v := range vs {
		v.verify()
		fmt.Printf("  %s: %6d/%6d bytes, %d corrupt frames, %d gaps\n",
			v.name, len(v.received), total, v.badFrames, v.gaps)
		if len(v.received) != total || v.badFrames != 0 || v.gaps != 0 {
			ok = false
		}
	}
	if ok {
		fmt.Println("\nevery viewer received the complete, gapless broadcast across the crash")
	} else {
		fmt.Println("\nBROADCAST DAMAGED — this should not happen")
	}
}
