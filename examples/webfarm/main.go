// Webfarm reproduces the paper's Figure 2 scenario: HydraNet service
// scaling by global IP-address replication.
//
// The origin host 192.20.225.20 runs a web service (port 80) and a telnet
// service (port 23). The web service is replicated onto a host server near
// a remote client population; the redirector's table maps 192.20.225.20:80
// to the nearest replica, while traffic for port 23 — which has no table
// entry — passes through to the origin host untouched. Neither the clients
// nor the origin host's telnet service are aware of the replication.
//
// Run with: go run ./examples/webfarm
package main

import (
	"fmt"
	"strings"
	"time"

	"hydranet"
	"hydranet/internal/app"
)

// miniHTTP answers one request line with a tagged response, so we can see
// which machine served it.
func miniHTTP(tag string) func(*hydranet.Conn) {
	return func(c *hydranet.Conn) {
		var req []byte
		buf := make([]byte, 1024)
		c.OnReadable(func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				req = append(req, buf[:n]...)
			}
			if i := strings.IndexByte(string(req), '\n'); i >= 0 {
				line := strings.TrimSpace(string(req[:i]))
				body := fmt.Sprintf("<html>%s served by %s</html>", line, tag)
				resp := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n%s",
					len(body), body)
				app.Source(c, []byte(resp), true)
			}
		})
	}
}

func fetch(net *hydranet.Net, from *hydranet.Host, ep hydranet.Endpoint, reqLine string) string {
	conn, err := from.DialEndpoint(ep)
	if err != nil {
		panic(err)
	}
	var resp []byte
	app.Collect(conn, &resp)
	app.Source(conn, []byte(reqLine+"\n"), false)
	net.RunFor(5 * time.Second)
	return string(resp)
}

func main() {
	net := hydranet.New(hydranet.Config{Seed: 2})

	// Topology, following Figure 2: a client population behind a
	// redirector; the origin host far away; a host server near the
	// clients.
	clientA := net.AddHost("clientA", hydranet.HostConfig{})
	clientB := net.AddHost("clientB", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	hostServer := net.AddHost("hostserver", hydranet.HostConfig{})
	origin := net.AddHost("origin", hydranet.HostConfig{})

	near := hydranet.LinkConfig{Rate: 10_000_000, Delay: time.Millisecond}
	far := hydranet.LinkConfig{Rate: 1_500_000, Delay: 40 * time.Millisecond} // a WAN hop
	net.Link(clientA, rd.Host, near)
	net.Link(clientB, rd.Host, near)
	net.Link(hostServer, rd.Host, near)
	net.LinkAddr(origin, rd.Host, far,
		hydranet.MustAddr("192.20.225.20"), hydranet.MustAddr("192.20.225.1"))
	net.AutoRoute()

	originAddr := hydranet.MustAddr("192.20.225.20")
	webSvc := hydranet.ServiceID{Addr: originAddr, Port: 80}

	// The origin host runs httpd and telnetd under its real address.
	httpd, err := origin.Listen(originAddr, 80)
	if err != nil {
		panic(err)
	}
	httpd.SetAcceptFunc(miniHTTP("origin httpd"))
	telnetd, err := origin.Listen(originAddr, 23)
	if err != nil {
		panic(err)
	}
	telnetd.SetAcceptFunc(miniHTTP("origin telnetd"))

	// Replicate the web service onto the nearby host server (a_httpd in
	// the paper's figure): metric 1 vs the origin's 10.
	if err := net.DeployScale(webSvc, rd, []hydranet.ScaleTarget{
		{Host: hostServer, Metric: 1},
	}, miniHTTP("a_httpd replica")); err != nil {
		panic(err)
	}
	net.Settle()

	fmt.Println("-- client A fetches http://192.20.225.20/ (port 80, redirected) --")
	fmt.Println(fetch(net, clientA, hydranet.Endpoint{Addr: originAddr, Port: 80}, "GET /index.html"))

	fmt.Println("\n-- client B telnets to 192.20.225.20 (port 23, NOT redirected) --")
	fmt.Println(fetch(net, clientB, hydranet.Endpoint{Addr: originAddr, Port: 23}, "login guest"))

	st := rd.Table().Stats()
	fmt.Printf("\nredirector: %d packets tunneled to the replica, %d passed through to the origin\n",
		st.Redirected, st.PassedThrough)
	osent, _ := func() (uint64, uint64) { s := origin.TCP().Stats(); return s.SegsIn, s.SegsOut }()
	hsent := hostServer.TCP().Stats().SegsIn
	fmt.Printf("origin host saw %d segments (telnet only); host server saw %d (all web traffic)\n",
		osent, hsent)
}
