// Brokerage models the paper's other motivating class of services:
// transaction-based applications with per-session server state ("service
// interruptions for an on-line brokerage firm may have very serious
// effects" — and "plain service request redirection is not sufficient"
// because the server holds state).
//
// Every replica runs the same deterministic order-matching logic, so each
// backup's session state (cash, positions) is kept hot by the very same
// client byte stream the primary processes. When the primary crashes
// between two orders, the promoted backup continues the session with the
// state intact: the confirmations after the crash still reflect the trades
// made before it.
//
// Run with: go run ./examples/brokerage
package main

import (
	"fmt"
	"strings"
	"time"

	"hydranet"
	"hydranet/internal/app"
)

// account is per-connection session state, replicated implicitly by
// deterministic replay of the order stream.
type account struct {
	cash      int
	positions map[string]int
}

// price is a deterministic "market": each symbol has a fixed quote, so all
// replicas fill orders identically.
func price(symbol string) int {
	p := 10
	for _, r := range symbol {
		p += int(r) % 7
	}
	return p
}

// brokerHandler implements a line-based order protocol:
//
//	BUY <qty> <symbol>  |  SELL <qty> <symbol>  |  BALANCE
//
// Each order is confirmed with the fill and the running account state.
func brokerHandler(c *hydranet.Conn) {
	acct := &account{cash: 10_000, positions: map[string]int{}}
	var inbuf []byte
	var out []byte
	buf := make([]byte, 2048)
	flush := func() {
		for len(out) > 0 {
			n := c.Write(out)
			if n == 0 {
				return
			}
			out = out[n:]
		}
	}
	reply := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format+"\n", args...)...)
	}
	execute := func(line string) {
		f := strings.Fields(line)
		switch {
		case len(f) == 3 && (f[0] == "BUY" || f[0] == "SELL"):
			qty := 0
			fmt.Sscanf(f[1], "%d", &qty)
			sym := f[2]
			cost := qty * price(sym)
			if f[0] == "SELL" {
				qty, cost = -qty, -cost
			}
			if acct.cash-cost < 0 || acct.positions[sym]+qty < 0 {
				reply("REJECTED %s (insufficient funds or shares)", line)
				return
			}
			acct.cash -= cost
			acct.positions[sym] += qty
			reply("FILLED %s @ %d | cash=%d %s=%d",
				line, price(sym), acct.cash, sym, acct.positions[sym])
		case len(f) == 1 && f[0] == "BALANCE":
			reply("BALANCE cash=%d positions=%v", acct.cash, acct.positions)
		default:
			reply("ERROR unparseable order %q", line)
		}
	}
	c.OnReadable(func() {
		for {
			n := c.Read(buf)
			if n == 0 {
				break
			}
			inbuf = append(inbuf, buf[:n]...)
		}
		for {
			i := strings.IndexByte(string(inbuf), '\n')
			if i < 0 {
				break
			}
			line := strings.TrimSpace(string(inbuf[:i]))
			inbuf = inbuf[i+1:]
			if line != "" {
				execute(line)
			}
		}
		flush()
		if c.PeerClosed() {
			c.Close()
		}
	})
	c.OnWritable(flush)
}

func main() {
	net := hydranet.New(hydranet.Config{Seed: 4})
	trader := net.AddHost("trader", hydranet.HostConfig{})
	rd := net.AddRedirector("rd", hydranet.HostConfig{})
	s0 := net.AddHost("s0", hydranet.HostConfig{})
	s1 := net.AddHost("s1", hydranet.HostConfig{})
	s2 := net.AddHost("s2", hydranet.HostConfig{})
	link := hydranet.LinkConfig{Rate: 10_000_000, Delay: 2 * time.Millisecond}
	for _, h := range []*hydranet.Host{trader, s0, s1, s2} {
		net.Link(h, rd.Host, link)
	}
	net.AutoRoute()

	svc := hydranet.ServiceID{Addr: hydranet.MustAddr("192.20.225.20"), Port: 7777}
	ftsvc, err := net.DeployFT(svc, rd, []*hydranet.Host{s0, s1, s2},
		hydranet.FTOptions{Detector: hydranet.DetectorParams{RetransmitThreshold: 2}},
		brokerHandler)
	if err != nil {
		panic(err)
	}
	net.Settle()
	fmt.Printf("brokerage live at %s with 3 replicas: %v\n\n", svc, ftsvc.Chain())

	conn, err := trader.Dial(svc)
	if err != nil {
		panic(err)
	}
	var transcript []byte
	app.Collect(conn, &transcript)
	send := func(order string) {
		conn.Write([]byte(order + "\n"))
		fmt.Printf(">> %s\n", order)
	}

	conn.OnConnected(func() {
		send("BUY 100 ACME")
		send("BUY 50 INITECH")
	})
	net.RunFor(2 * time.Second)

	dead := ftsvc.CrashPrimary()
	fmt.Printf("\n*** primary %s crashed; the session's state lives on the backups ***\n\n", dead.Name())

	send("SELL 30 ACME")
	send("BALANCE")
	net.RunFor(60 * time.Second)

	fmt.Println("server transcript (uninterrupted session):")
	for _, line := range strings.Split(strings.TrimSpace(string(transcript)), "\n") {
		fmt.Printf("<< %s\n", line)
	}
	fmt.Printf("\nconnection: %v, surviving chain: %v\n", conn.State(), ftsvc.Chain())
}
